(** The common shape of a workload application: a program, its I/O
    specification, its root-cause catalog, and the ground-truth
    control-plane function list used to validate automatic
    classification. *)

open Mvm

type t = {
  name : string;
  descr : string;
  labeled : Label.labeled;
  spec : Spec.t;
  catalog : Ddet_metrics.Root_cause.catalog;
  control_plane : string list;
      (** ground truth: function names that are control-plane (everything
          else is data-plane); empty when the app has no meaningful split *)
  nodes : Node.map option;
      (** the deployment topology: which node each thread root runs on.
          [None] for single-process apps — node-granular faults and
          sharded recording then do not apply *)
}

(** [run ?max_steps app world] executes the app and judges it with its own
    specification. *)
val run : ?max_steps:int -> t -> World.t -> Interp.result

(** [lower_faults app plan] desugars any node-granular faults in [plan]
    against the app's node map ({!Mvm.Fault.lower}); plans without node
    faults pass through untouched.

    @raise Invalid_argument when the plan has node faults but the app has
    no node map. *)
val lower_faults : t -> Fault.plan -> Fault.plan

(** [production_run app ~seed] is [run] under a seeded random world — the
    model of an uncontrolled production environment. [faults] (default
    {!Fault.none}) additionally injects an adversarial fault plan: lossy
    channels, stalled threads, perturbed inputs — or node-granular faults
    (partitions, node crashes), lowered via {!lower_faults} first. *)
val production_run :
  ?max_steps:int -> ?faults:Fault.plan -> t -> seed:int -> Interp.result
