open Mvm
open Mvm.Dsl
open Ddet_metrics

type params = {
  n_writers : int;
  blocks_per_writer : int;
  payload_len : int;
}

let default_params = { n_writers = 2; blocks_per_writer = 4; payload_len = 256 }

let rc_race = "early-ack-race"
let rc_drop = "replication-drop"
let rc_disk = "disk-fault"

let ack_chan w = Printf.sprintf "ack_%d" w
let resp_chan w = Printf.sprintf "resp_%d" w
let writer_name w = Printf.sprintf "writer%d" w

let fault_domain = [ 0; 0; 0; 0; 0; 0; 0; 1 ] |> List.map Value.int

let payload_domain p =
  [ 'p'; 'q'; 'r' ] |> List.map (fun c -> Value.str (String.make p.payload_len c))

(* Route a response or acknowledgement to the writer owning block [idv]:
   writer w owns ids [w*B, (w+1)*B). *)
let route_by_id p idv chan_of =
  let rec chain w =
    if w = p.n_writers - 1 then [ send (chan_of w) (v "r") ]
    else
      [
        if_
          (v idv <: i ((w + 1) * p.blocks_per_writer))
          [ send (chan_of w) (v "r") ]
          (chain (w + 1));
      ]
  in
  match chain 0 with [ s ] -> s | ss -> if_ (b true) ss []

(* Control-plane helpers: fault handling and routing decisions live in
   their own low-data-rate functions, as in miniht. *)
let startup_p_func =
  func "startup_p" [] [ input "f" "fault_net"; return (v "f") ]

let startup_s_func =
  func "startup_s" [] [ input "f" "fault_disk"; return (v "f") ]

let pick_verify_func =
  func "pick_verify" [] [ input "b" "verify_block"; return (v "b") ]

let pick_replica_func =
  func "pick_replica" [] [ input "c" "replica_choice"; return (v "c") ]

(* The primary chunkserver: stores writes, ACKNOWLEDGES BEFORE FORWARDING
   the replication (the early-ack defect: the replication pipeline is an
   asynchronous store-and-forward queue flushed one block per service
   iteration, strictly after pending reads), serves reads from disk_0 and
   drops exactly one replication when the forwarding-link fault fires. *)
let primary_func p =
  let poll =
    [
      try_recv "okw" "bid" "write_0";
      when_ (v "okw")
        [
          recv "m" "write_0";
          store "disk_0" (v "bid") (i 1);
          store_g "bytes_p" (g "bytes_p" +: str_len (v "m"));
          (* the ack names the block it covers, so writers can discard
             stale or duplicated acks during retransmission *)
          assign "r" (v "bid");
          route_by_id p "bid" ack_chan;
          if_
            ((v "fnet" =: i 1) &&: (v "dropped" =: i 0))
            [ assign "dropped" (i 1) ]
            [ send "replq" (v "bid"); send "replq" (v "m") ];
        ];
      try_recv "okr" "rb" "read_0";
      when_ (v "okr")
        [ assign "r" (idx "disk_0" (v "rb")); route_by_id p "rb" resp_chan ];
      (* flush one pending replication — an acknowledged block reaches
         the secondary strictly later than its ack *)
      try_recv "okf" "fb" "replq";
      when_ (v "okf")
        [ recv "fm" "replq"; send "repl" (v "fb"); send "repl" (v "fm") ];
    ]
  in
  func "primary" []
    ([
       call ~dest:"fnet" "startup_p" [];
       assign "dropped" (i 0);
       assign "stopped" (i 0);
       while_ (v "stopped" =: i 0)
         (poll
         @ [
             try_recv "okc" "cm" "ctl_p";
             when_ (v "okc") [ assign "stopped" (i 1) ];
             yield;
           ]);
     ]
    @ [
        assign "more" (b true);
        while_ (v "more")
          (poll @ [ assign "more" (v "okw" ||: v "okr" ||: v "okf") ]);
        send "ack_p" (i 1);
      ])

(* The secondary chunkserver: applies replications (unless its disk
   faulted) and serves reads from disk_1. *)
let secondary_func p =
  let poll =
    [
      try_recv "okr2" "rid" "repl";
      when_ (v "okr2")
        [
          recv "m" "repl";
          when_ (v "fdisk" =: i 0)
            [
              store "disk_1" (v "rid") (i 1);
              store_g "bytes_s" (g "bytes_s" +: str_len (v "m"));
            ];
        ];
      try_recv "okq" "rb" "read_1";
      when_ (v "okq")
        [ assign "r" (idx "disk_1" (v "rb")); route_by_id p "rb" resp_chan ];
    ]
  in
  func "secondary" []
    ([
       call ~dest:"fdisk" "startup_s" [];
       assign "stopped" (i 0);
       while_ (v "stopped" =: i 0)
         (poll
         @ [
             try_recv "okc" "cm" "ctl_s";
             when_ (v "okc") [ assign "stopped" (i 1) ];
             yield;
           ]);
     ]
    @ [
        assign "more" (b true);
        while_ (v "more") (poll @ [ assign "more" (v "okr2" ||: v "okq") ]);
        send "ack_s" (i 1);
      ])

(* Delivery attempts a writer makes before it retransmits an upload. *)
let ack_patience = 12

let writer_func p w =
  let upload =
    (* one upload per connection: the id/payload pair is serialised *)
    [
      lock "wl";
      send "write_0" (v "bid");
      send "write_0" (v "m");
      unlock "wl";
    ]
  in
  func (writer_name w) []
    [
      for_ "k" (i 0)
        (i p.blocks_per_writer)
        ([
           input "m" "blk_data";
           assign "bid" (i (w * p.blocks_per_writer) +: v "k");
         ]
        @ upload
        @ [
            (* at-least-once upload over a lossy link: poll for this
               block's ack with a patience window, retransmit on timeout.
               Acks carry the block id, so a stale or duplicated ack for
               an earlier block is consumed and discarded rather than
               satisfying this wait; the primary's store is idempotent,
               so retransmitted uploads are safe. *)
            assign "acked" (i 0);
            while_ (v "acked" =: i 0)
              [
                assign "polls" (i 0);
                while_ ((v "acked" =: i 0) &&: (v "polls" <: i ack_patience))
                  [
                    try_recv "oka" "a" (ack_chan w);
                    when_ (v "oka" &&: (v "a" =: v "bid"))
                      [ assign "acked" (i 1) ];
                    assign "polls" (v "polls" +: i 1);
                    yield;
                  ];
                when_ (v "acked" =: i 0) upload;
              ];
          ]);
      (* verify one of our blocks through a load-balanced replica *)
      call ~dest:"vb" "pick_verify" [];
      assign "b" (i (w * p.blocks_per_writer) +: v "vb");
      call ~dest:"rep" "pick_replica" [];
      if_ (v "rep" =: i 0)
        [ send "read_0" (v "b") ]
        [ send "read_1" (v "b") ];
      (* the response can be starved by drop faults too: keep polling *)
      assign "got" (i 0);
      while_ (v "got" =: i 0)
        [
          try_recv "okv" "res" (resp_chan w);
          if_ (v "okv") [ assign "got" (i 1) ] [ yield ];
        ];
      if_ (v "res" =: i 0)
        [ send "wdone" (i 1) ]
        [ send "wdone" (i 0) ];
    ]

let main_func p =
  func "main" []
    ([ spawn "primary" []; spawn "secondary" [] ]
    @ List.init p.n_writers (fun w -> spawn (writer_name w) [])
    @ [
        assign "stales" (i 0);
        for_ "c" (i 0) (i p.n_writers)
          [ recv "d" "wdone"; assign "stales" (v "stales" +: v "d") ];
        send "ctl_p" (i 2);
        recv "ap" "ack_p";
        send "ctl_s" (i 2);
        recv "as_" "ack_s";
        output "reads" (i p.n_writers);
        output "stales" (v "stales");
      ])

let program p =
  let total = p.n_writers * p.blocks_per_writer in
  program ~name:"cloudstore"
    ~regions:
      [
        array "disk_0" total (Value.int 0);
        array "disk_1" total (Value.int 0);
        scalar "bytes_p" (Value.int 0);
        scalar "bytes_s" (Value.int 0);
      ]
    ~inputs:
      [
        ("blk_data", payload_domain p);
        ("verify_block", List.init p.blocks_per_writer Value.int);
        ("replica_choice", [ Value.int 0; Value.int 1 ]);
        ("fault_net", fault_domain);
        ("fault_disk", fault_domain);
      ]
    ~main:"main"
    ([
       main_func p;
       primary_func p;
       secondary_func p;
       startup_p_func;
       startup_s_func;
       pick_verify_func;
       pick_replica_func;
     ]
    @ List.init p.n_writers (writer_func p))

let spec =
  Spec.make "acked-blocks-readable" (fun r ->
      match Trace.outputs_on r.Interp.trace "stales" with
      | [ Value.Vint 0 ] -> Ok ()
      | [ Value.Vint n ] when n > 0 -> Error "stale-read"
      | _ -> Error "malformed-io")

(* The transient signature of the race: a read observed 0 in a cell that
   holds 1 by the end of the run — the replication arrived after the
   read. Dropped or disk-faulted replications leave the cell at 0. *)
let race_cause p =
  Root_cause.make ~id:rc_race
    ~descr:
      "a load-balanced read reached the secondary before the replication of \
       an already-acknowledged block"
    (fun r ->
      let t = r.Interp.trace in
      let total = p.n_writers * p.blocks_per_writer in
      let stale_then_present b =
        Trace.exists
          (fun (e : Event.t) ->
            match e.Event.kind with
            | Event.Read { region = "disk_1"; index = Some i; value }
              when i = b ->
              Value.equal value.Value.v (Value.int 0)
            | _ -> false)
          t
        && Value.equal
             (Trace.array_cell_at t "disk_1" ~index:b ~init:(Value.int 0)
                ~step:max_int)
             (Value.int 1)
      in
      List.exists stale_then_present (List.init total (fun b -> b)))

let fault_fired trace chan =
  List.exists
    (fun (_, _, v) -> Value.equal v (Value.int 1))
    (Trace.inputs_on trace chan)

let drop_cause =
  Root_cause.make ~id:rc_drop
    ~descr:"the forwarding link dropped a replication; the block never arrives"
    (fun r -> fault_fired r.Interp.trace "fault_net")

let disk_cause =
  Root_cause.make ~id:rc_disk
    ~descr:"the secondary's disk rejected writes"
    (fun r -> fault_fired r.Interp.trace "fault_disk")

let catalog p =
  {
    Root_cause.app = "cloudstore";
    failure_sig =
      (function Mvm.Failure.Spec_violation "stale-read" -> true | _ -> false);
    causes = [ race_cause p; drop_cause; disk_cause ];
  }

let app ?(params = default_params) () =
  {
    App.name = "cloudstore";
    descr =
      "replicated block store: early acks race load-balanced reads against \
       the replication pipeline";
    labeled = program params;
    spec;
    catalog = catalog params;
    control_plane =
      [ "main"; "startup_p"; "startup_s"; "pick_verify"; "pick_replica" ];
    (* deployment: coordinator, the two replicas, one node per writer
       client; helper functions live with whichever root calls them *)
    nodes =
      Some
        (Mvm.Node.make
           ~nodes:
             ([ "coord"; "primary"; "secondary" ]
             @ List.init params.n_writers (Printf.sprintf "client%d"))
           ~assign:
             ([
                ("main", "coord");
                ("primary", "primary");
                ("secondary", "secondary");
              ]
             @ List.init params.n_writers (fun w ->
                   (writer_name w, Printf.sprintf "client%d" w))));
  }
