open Mvm
open Mvm.Dsl
open Ddet_metrics

type params = {
  messages_per_producer : int;
  payload_len : int;
  stagger : int;
      (** idle iterations producer 1 performs before starting: arrivals are
          bursty, so the producers only overlap at the burst boundary and
          the lost-update race is rare — hard to reproduce, like the
          paper's failures *)
}

let default_params = { messages_per_producer = 6; payload_len = 128; stagger = 18 }

let drop_marker = "DROP"

let net_domain p =
  let payload c = Value.str (String.make p.payload_len c) in
  (* one in eight messages is lost to congestion *)
  [
    payload 'a'; payload 'b'; payload 'c'; payload 'd';
    payload 'e'; payload 'f'; payload 'g';
    Value.str drop_marker;
  ]

let producer_name p = Printf.sprintf "producer%d" p
let done_chan p = Printf.sprintf "done%d" p
let fin_chan p = Printf.sprintf "fin%d" p

(* Delivery attempts a producer waits for its report to be confirmed
   before it retransmits. *)
let report_patience = 12

(* Enqueue without synchronisation: read the cursor, get preempted, write —
   the classic lost-update race that overwrites a peer's slot. *)
let producer p params =
  func (producer_name p) []
    [
      (* stagger the second producer's burst *)
      for_ "w" (i 0) (i (p * params.stagger)) [ skip ];
      assign "sent" (i 0);
      for_ "k" (i 0)
        (i params.messages_per_producer)
        [
          input "m" "net";
          if_
            (v "m" =: s drop_marker)
            [ (* dropped in the network; the producer still counts it *) skip ]
            [
              assign "idx" (g "cursor");
              yield;
              store "buf" (v "idx") (v "m");
              store_g "cursor" (v "idx" +: i 1);
            ];
          assign "sent" (v "sent" +: i 1);
        ];
      (* report-and-confirm handshake: the done report retransmits until
         the server's fin confirmation arrives, so a dropped report (or
         confirmation) under an injected fault plan cannot wedge the
         run. The server keys on the first report it sees, so duplicates
         are harmless. *)
      send (done_chan p) (v "sent");
      assign "fin" (i 0);
      while_ (v "fin" =: i 0)
        [
          assign "polls" (i 0);
          while_ ((v "fin" =: i 0) &&: (v "polls" <: i report_patience))
            [
              try_recv "okf" "f" (fin_chan p);
              when_ (v "okf") [ assign "fin" (i 1) ];
              assign "polls" (v "polls" +: i 1);
              yield;
            ];
          when_ (v "fin" =: i 0) [ send (done_chan p) (v "sent") ];
        ];
    ]

let program params =
  let cap = 2 * params.messages_per_producer * 2 in
  program ~name:"msg_server"
    ~regions:
      [ scalar "cursor" (Value.int 0); array "buf" cap (Value.str "") ]
    ~inputs:[ ("net", net_domain params) ]
    ~main:"main"
    [
      func "main" []
        [
          spawn (producer_name 0) [];
          spawn (producer_name 1) [];
          (* poll for the producers' reports instead of blocking: a
             lossy channel starves a blocking recv, a poll loop just
             retries. The first report per producer wins; its fin
             confirmation stops that producer's retransmission. *)
          assign "c0" (i 0);
          assign "c1" (i 0);
          assign "got0" (i 0);
          assign "got1" (i 0);
          while_ ((v "got0" =: i 0) ||: (v "got1" =: i 0))
            [
              when_ (v "got0" =: i 0)
                [
                  try_recv "ok0" "d0" (done_chan 0);
                  when_ (v "ok0")
                    [
                      assign "c0" (v "d0");
                      assign "got0" (i 1);
                      send (fin_chan 0) (i 1);
                    ];
                ];
              when_ (v "got1" =: i 0)
                [
                  try_recv "ok1" "d1" (done_chan 1);
                  when_ (v "ok1")
                    [
                      assign "c1" (v "d1");
                      assign "got1" (i 1);
                      send (fin_chan 1) (i 1);
                    ];
                ];
              yield;
            ];
          output "sent" (v "c0" +: v "c1");
          output "delivered" (g "cursor");
        ];
      producer 0 params;
      producer 1 params;
    ]

let spec =
  Spec.make "all-sent-delivered" (fun r ->
      match
        ( Trace.outputs_on r.Interp.trace "sent",
          Trace.outputs_on r.Interp.trace "delivered" )
      with
      | [ Value.Vint sent ], [ Value.Vint delivered ] ->
        if delivered < sent then Error "dropped-messages"
        else if delivered > sent then Error "phantom-messages"
        else Ok ()
      | _ -> Error "malformed-io")

let buffer_race =
  Root_cause.make ~id:"buffer-race"
    ~descr:"unsynchronised cursor update loses a slot when producers interleave"
    (fun r ->
      let writes = Trace.writes_to_scalar r.Interp.trace "cursor" in
      List.exists
        (fun (_, tid1, v1) ->
          List.exists
            (fun (_, tid2, v2) -> tid1 <> tid2 && Value.equal v1 v2)
            writes)
        writes)

let congestion =
  Root_cause.make ~id:"network-congestion"
    ~descr:"the network dropped a message before it reached the server"
    (fun r ->
      List.exists
        (fun (_, _, v) -> Value.equal v (Value.str drop_marker))
        (Trace.inputs_on r.Interp.trace "net"))

let catalog =
  {
    Root_cause.app = "msg_server";
    failure_sig =
      (function
        | Mvm.Failure.Spec_violation "dropped-messages" -> true | _ -> false);
    causes = [ buffer_race; congestion ];
  }

let app ?(params = default_params) () =
  {
    App.name = "msg_server";
    descr =
      "server dropping messages: buffer race vs. network congestion — the \
       paper's Sec. 2 multi-root-cause example";
    labeled = program params;
    spec;
    catalog;
    control_plane = [ "main" ];
    (* deployment: the consuming server on one node, each producer on its
       own — the topology node faults and sharded recording act on *)
    nodes =
      Some
        (Mvm.Node.make
           ~nodes:[ "server"; "p0"; "p1" ]
           ~assign:
             [
               ("main", "server");
               (producer_name 0, "p0");
               (producer_name 1, "p1");
             ]);
  }
