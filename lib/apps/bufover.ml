open Mvm
open Mvm.Dsl
open Ddet_metrics

let buffer_len = 8

let program () =
  program ~name:"bufover"
    ~regions:[ array "buf" buffer_len (Value.int 0) ]
    ~inputs:[ ("len", List.init 16 Value.int) ]
    ~main:"main"
    [
      func "main" []
        [
          input "n" "len";
          (* the defect: no check of n against the buffer length *)
          for_ "k" (i 0) (v "n") [ store "buf" (v "k") (i 1) ];
          output "copied" (v "n");
        ];
    ]

let missing_check =
  Root_cause.make ~id:"missing-bounds-check"
    ~descr:"copy loop writes past the buffer because the input size is unchecked"
    (fun r ->
      match Trace.inputs_on r.Interp.trace "len" with
      | (_, _, Value.Vint n) :: _ -> n > buffer_len
      | _ -> false)

let catalog =
  {
    Root_cause.app = "bufover";
    failure_sig =
      (function
        | Mvm.Failure.Crash { msg; _ } ->
          (* any out-of-bounds crash on the copy *)
          String.length msg >= 9 && String.sub msg 0 9 = "array buf"
        | _ -> false);
    causes = [ missing_check ];
  }

let app () =
  {
    App.name = "bufover";
    descr = "unchecked copy into a fixed buffer — the paper's Sec. 3 crash example";
    labeled = program ();
    spec = Spec.accept_all;
    catalog;
    control_plane = [];
    nodes = None;
  }
