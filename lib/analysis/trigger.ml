open Mvm

type t = {
  name : string;
  fired : Event.t -> bool;
}

let manual ~name fired = { name; fired }

let of_race_detector rd =
  { name = "race-detector"; fired = (fun e -> Race_detector.observe rd e <> None) }

let of_invariants inv =
  { name = "invariants"; fired = (fun e -> Invariants.violation inv e <> None) }

let of_sites ?(name = "static-sites") sids =
  let tbl = Hashtbl.create (List.length sids) in
  List.iter (fun s -> Hashtbl.replace tbl s ()) sids;
  {
    name;
    fired =
      (fun (e : Event.t) -> Event.is_shared_access e && Hashtbl.mem tbl e.sid);
  }

let large_input ~chan ~threshold =
  {
    name = Printf.sprintf "large-input(%s>%d)" chan threshold;
    fired =
      (fun (e : Event.t) ->
        match e.kind with
        | Event.In io when String.equal io.chan chan -> (
          match io.value.Value.v with
          | Value.Vint n -> n > threshold
          | Value.Vstr s -> String.length s > threshold
          | Value.Vbool _ | Value.Vunit -> false)
        | _ -> false);
  }

let selector ?(sticky = false) ?(window = 500) triggers =
  let high_until = ref (-1) in
  let name =
    "triggers(" ^ String.concat "," (List.map (fun t -> t.name) triggers) ^ ")"
  in
  {
    Ddet_record.Fidelity_level.name;
    level =
      (fun (e : Event.t) ->
        let fired = List.exists (fun t -> t.fired e) triggers in
        if fired then
          high_until := if sticky then max_int else max !high_until (e.step + window);
        if e.step <= !high_until then Ddet_record.Fidelity_level.High
        else Ddet_record.Fidelity_level.Low);
  }
