type t = Control | Data

let to_string = function Control -> "control" | Data -> "data"
let equal a b = match a, b with Control, Control | Data, Data -> true | _ -> false

type map = (string * t) list

(* Strictly greater: a rate exactly at the threshold stays Control. The
   static classifier (Splane) breaks its byte-weight ties the same way,
   so a function sitting exactly on either threshold gets the
   conservative plane from both classifiers. *)
let classify profile ~threshold =
  List.map
    (fun (r : Taint_profile.row) ->
      (r.fname, if r.rate > threshold then Data else Control))
    profile

let of_assoc l = l

let plane_of map fname =
  match List.assoc_opt fname map with Some p -> p | None -> Control

let to_assoc map = List.sort (fun (a, _) (b, _) -> String.compare a b) map

let selector map =
  Ddet_record.Fidelity_level.by_function ~name:"code-based" (fun fname ->
      match plane_of map fname with
      | Control -> Ddet_record.Fidelity_level.High
      | Data -> Ddet_record.Fidelity_level.Low)
