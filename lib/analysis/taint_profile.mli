(** Per-function data-rate profiling (the measurement behind control-plane /
    data-plane classification, after Altekar & Stoica, HotDep'10).

    Values in the VM carry taint naming the input channels they derive from;
    an event's {!Mvm.Event.data_bytes} is the input-derived payload it
    moves. Profiling training runs gives each function a data rate —
    input-derived bytes moved per step executed in that function. *)

open Mvm

type row = {
  fname : string;
  steps : int;  (** scheduler steps spent in the function *)
  data_bytes : int;  (** input-derived bytes moved by its events *)
  rate : float;  (** [data_bytes / max 1 steps] *)
}

type t = row list

(** [of_results rs] profiles one or more (training) runs; rows are sorted by
    descending rate. *)
val of_results : Interp.result list -> t

(** [rate t fname] is the measured rate, or [0.] for a function never
    executed in training. Zero is below every classification threshold,
    so unseen functions classify as Control — deliberately the same
    conservative default as {!Plane.plane_of} on unknown names and the
    static classifier's zero weight. *)
val rate : t -> string -> float

(** [total_bytes t] is the input-derived bytes across all functions. *)
val total_bytes : t -> int

val pp : Format.formatter -> t -> unit
