(** Dynamic triggers (§3.1.3): runtime predicates over code and data that
    dial recording fidelity up, with a dial-down policy when they stay
    quiet.

    A trigger fires on events ("a race was just detected", "an invariant
    was just violated", "a request larger than the threshold arrived");
    {!selector} turns a set of triggers into an RCSE fidelity selector:
    every firing opens (or extends) a high-fidelity window of [window]
    steps; [sticky] keeps fidelity high forever after the first firing
    ("increase the determinism guarantees onward from the point of
    detection"). *)

open Mvm

type t = {
  name : string;
  fired : Event.t -> bool;  (** stateful; called on every event in order *)
}

(** [manual ~name f] wraps a predicate. *)
val manual : name:string -> (Event.t -> bool) -> t

(** [of_race_detector rd] fires whenever the sampling race detector reports
    a race at the current event. *)
val of_race_detector : Race_detector.t -> t

(** [of_invariants inv] fires on the events that violate a trained
    invariant. *)
val of_invariants : Invariants.t -> t

(** [of_sites sids] fires on every shared read/write at one of the given
    statement sites — how a static race candidate set dials fidelity up
    at suspect code without running a sampling detector. Stateless. *)
val of_sites : ?name:string -> int list -> t

(** [large_input ~chan ~threshold] is the paper's data-based example: fire
    when an input on [chan] is an integer above [threshold] or a string
    longer than [threshold]. *)
val large_input : chan:string -> threshold:int -> t

(** [selector ?sticky ?window triggers] builds the combined selector.
    Default [window] is 500 steps; default [sticky] is [false]. *)
val selector :
  ?sticky:bool -> ?window:int -> t list -> Ddet_record.Fidelity_level.selector
