(** Control-plane / data-plane classification (§3.1.1).

    Control-plane code manages data flow and runs at low data rates;
    data-plane code moves the payload. The classifier thresholds the
    measured per-function data rate: functions above the threshold are
    data-plane, the rest (including functions never seen in training) are
    control-plane — the conservative direction, since control-plane code is
    what RCSE records precisely. *)

type t = Control | Data

val to_string : t -> string
val equal : t -> t -> bool

(** A total classification: function name to plane. *)
type map

(** [classify profile ~threshold] assigns [Data] to functions whose rate
    (input-derived bytes per step) {e strictly} exceeds [threshold]: a
    rate equal to the threshold ties toward [Control], matching the
    static classifier's tie-breaking ({!Ddet_static.Splane} uses the same
    strict comparison on byte weights) and the [Control] default for
    functions absent from the profile ({!Taint_profile.rate} returns
    [0.] for unseen names). *)
val classify : Taint_profile.t -> threshold:float -> map

(** [of_assoc l] builds a map from explicit assignments (ground truth in
    tests and ablations). *)
val of_assoc : (string * t) list -> map

(** [plane_of map fname] — unknown functions are [Control]. *)
val plane_of : map -> string -> t

(** [to_assoc map] lists the explicit assignments, sorted by name. *)
val to_assoc : map -> (string * t) list

(** [selector map] is the RCSE code-based selector: high fidelity exactly in
    control-plane functions. *)
val selector : map -> Ddet_record.Fidelity_level.selector
