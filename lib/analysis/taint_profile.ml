open Mvm

type row = { fname : string; steps : int; data_bytes : int; rate : float }

type t = row list

let of_results results =
  let steps_tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let bytes_tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let bump tbl key n =
    Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  List.iter
    (fun (r : Interp.result) ->
      Trace.iter
        (fun (e : Event.t) ->
          (match e.kind with Event.Step -> bump steps_tbl e.fname 1 | _ -> ());
          let b = Event.data_bytes e in
          if b > 0 then bump bytes_tbl e.fname b)
        r.trace)
    results;
  let fnames =
    List.sort_uniq String.compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) steps_tbl []
      @ Hashtbl.fold (fun k _ acc -> k :: acc) bytes_tbl [])
  in
  List.map
    (fun fname ->
      let steps = Option.value ~default:0 (Hashtbl.find_opt steps_tbl fname) in
      let data_bytes = Option.value ~default:0 (Hashtbl.find_opt bytes_tbl fname) in
      { fname; steps; data_bytes; rate = float_of_int data_bytes /. float_of_int (max 1 steps) })
    fnames
  |> List.sort (fun a b -> compare b.rate a.rate)

(* An unseen function rates 0.0 — below every threshold — so dynamic
   classification lands it in Control, agreeing with both Plane.plane_of's
   default for unknown names and the static classifier's bottom weight.
   All three defaults must stay aligned: control-plane is the plane RCSE
   records precisely, the conservative direction. *)
let rate t fname =
  match List.find_opt (fun r -> String.equal r.fname fname) t with
  | Some r -> r.rate
  | None -> 0.

let total_bytes t = List.fold_left (fun acc r -> acc + r.data_bytes) 0 t

let pp ppf t =
  List.iter
    (fun r ->
      Format.fprintf ppf "%-24s %8d steps %10d bytes %8.2f B/step@." r.fname
        r.steps r.data_bytes r.rate)
    t
