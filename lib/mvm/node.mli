(** Node maps: the distributed-system view of an MVM program.

    The MVM itself knows only threads and channels. A node map overlays
    the deployment topology an application models — which thread runs on
    which machine — so that faults can be expressed at node granularity
    (a partition separates machines, a node crash kills every thread on
    one) and recordings can be sharded into one per-node log, the way
    evidence actually survives a production incident.

    Threads are assigned to nodes through the functions they run:
    [assign] maps thread {e root} function names (the entry [main] and
    every [Spawn] target) to node names. Channel placement is derived
    statically: a channel belongs to every node whose threads can reach
    a [Send]/[Recv]/[Try_recv] on it (reachability through [Call]
    edges — a helper function's channel use counts against every node
    that calls it). A channel whose users span two sides of a partition
    is a {e cut} channel; deliveries on it fail for the window.

    Thread ids are assigned by the interpreter in spawn order, so the
    static tid map walks [main]'s body in program order (inlining calls)
    and numbers the [Spawn]s it meets. This is exact when only the root
    thread spawns, unconditionally — true of every shipped app — and the
    map refuses programs where spawned threads themselves spawn, rather
    than silently mis-assigning tids. *)

type map

(** [make ~nodes ~assign] builds a map. [nodes] fixes the node order
    (shards are written and reported in it); [assign] maps thread-root
    function names to node names.

    @raise Invalid_argument on an empty node list, a duplicate node, a
    node name with characters outside [A-Za-z0-9_-] (names become file
    name components of shard paths), or an assignment to an undeclared
    node. *)
val make : nodes:string list -> assign:(string * string) list -> map

(** The declared node names, in declaration (= shard) order. *)
val nodes : map -> string list

(** [node_of_fname map fname] is the node assigned to thread-root
    function [fname], if any. *)
val node_of_fname : map -> string -> string option

(** [static_tids map prog] is the [(tid, node)] assignment implied by
    [prog]'s spawn order: tid 0 is [main]'s node, tid [k] the node of the
    [k]-th [Spawn] target met walking [main] in program order (calls
    inlined, both branches of conditionals visited).

    @raise Invalid_argument when a function outside [main]'s call tree
    spawns (tid order would depend on the schedule), or when [main] or a
    spawned function has no node assignment. *)
val static_tids : map -> Ast.program -> (int * string) list

(** [members map prog node] is the tids of [node]'s threads, ascending. *)
val members : map -> Ast.program -> string -> int list

(** [chan_nodes map prog] is, per message channel, the sorted node names
    whose threads can reach a [Send]/[Recv]/[Try_recv] on it, channels
    sorted by name. *)
val chan_nodes : map -> Ast.program -> (string * string list) list

(** [fname_nodes map prog] maps every function reachable from a thread
    root to the sorted nodes whose threads may execute it (a helper
    called from two roots belongs to both roots' nodes). Functions no
    root reaches are absent. Sorted by function name.

    @raise Invalid_argument when a thread root has no node assignment. *)
val fname_nodes : map -> Ast.program -> (string * string list) list

(** [cut_channels map prog ~groups] is the channels a partition into
    [groups] severs: those whose user nodes land in two different groups.
    A node absent from every group is unaffected (still connected to
    all). Result sorted by channel name. *)
val cut_channels :
  map -> Ast.program -> groups:string list list -> string list

val pp : Format.formatter -> map -> unit
