open Dsl

type config = {
  n_threads : int;
  body_len : int;
  n_scalars : int;
  arr_len : int;
  with_channels : bool;
  with_locks : bool;
}

let default =
  {
    n_threads = 2;
    body_len = 8;
    n_scalars = 3;
    arr_len = 4;
    with_channels = true;
    with_locks = true;
  }

let locals = [ "x"; "y"; "z" ]

(* Expressions are integer-valued and crash-free: divisions are by nonzero
   constants and all locals are pre-initialised. *)
let rec gen_expr cfg rng depth =
  let leaf () =
    match Prng.int rng 3 with
    | 0 -> i (Prng.int rng 10)
    | 1 -> v (Prng.pick rng locals)
    | _ -> g (Printf.sprintf "s%d" (Prng.int rng cfg.n_scalars))
  in
  if depth <= 0 then leaf ()
  else
    match Prng.int rng 6 with
    | 0 | 1 -> leaf ()
    | 2 -> gen_expr cfg rng (depth - 1) +: gen_expr cfg rng (depth - 1)
    | 3 -> gen_expr cfg rng (depth - 1) -: gen_expr cfg rng (depth - 1)
    | 4 -> gen_expr cfg rng (depth - 1) *: i (Prng.int rng 3)
    | _ -> gen_expr cfg rng (depth - 1) /: i (1 + Prng.int rng 4)

let gen_cond cfg rng =
  let a = gen_expr cfg rng 1 and b = gen_expr cfg rng 1 in
  match Prng.int rng 3 with
  | 0 -> a <: b
  | 1 -> a =: b
  | _ -> a >=: b

(* Array indices are normalised to [0, len) so generated programs never
   crash on bounds. *)
let safe_index cfg e = ((e %: i cfg.arr_len) +: i cfg.arr_len) %: i cfg.arr_len

let rec gen_stmt cfg rng ?(in_lock = false) depth =
  let scalar () = Printf.sprintf "s%d" (Prng.int rng cfg.n_scalars) in
  let local () = Prng.pick rng locals in
  let choice = Prng.int rng 12 in
  match choice with
  | 0 | 1 -> [ assign (local ()) (gen_expr cfg rng 2) ]
  | 2 | 3 -> [ store_g (scalar ()) (gen_expr cfg rng 2) ]
  | 4 -> [ assign (local ()) (g (scalar ()) +: gen_expr cfg rng 1) ]
  | 5 -> [ store "arr" (safe_index cfg (gen_expr cfg rng 1)) (gen_expr cfg rng 1) ]
  | 6 -> [ assign (local ()) (idx "arr" (safe_index cfg (gen_expr cfg rng 1))) ]
  | 7 -> [ input (local ()) "in0" ]
  | 8 -> [ output "out" (gen_expr cfg rng 2) ]
  | 9 when cfg.with_channels ->
    if Prng.bool rng then [ send "ch" (gen_expr cfg rng 1) ]
    else
      (* the received value lands in a dedicated variable: on an empty
         channel it is unit, which must not leak into arithmetic locals *)
      [
        try_recv "ok" "msg" "ch";
        when_ (v "ok") [ assign (local ()) (v "msg") ];
      ]
  | 10 when cfg.with_locks && depth > 0 && not in_lock ->
    (lock "m" :: gen_stmt cfg rng ~in_lock:true (depth - 1)) @ [ unlock "m" ]
  | 11 when depth > 0 ->
    [
      if_ (gen_cond cfg rng)
        (gen_stmt cfg rng ~in_lock (depth - 1))
        (gen_stmt cfg rng ~in_lock (depth - 1));
    ]
  | _ -> [ store_g (scalar ()) (g (scalar ()) +: i 1) ]

let gen_body cfg rng =
  let init = List.map (fun x -> assign x (i 0)) locals in
  let rec build n acc =
    if n <= 0 then List.rev acc
    else build (n - 1) (List.rev_append (gen_stmt cfg rng 2) acc)
  in
  init @ build cfg.body_len []

let generate cfg rng =
  let worker_name k = Printf.sprintf "worker%d" k in
  let workers =
    List.init cfg.n_threads (fun k -> func (worker_name k) [] (gen_body cfg rng))
  in
  let main_body =
    List.init cfg.n_threads (fun k -> spawn (worker_name k) [])
    @ gen_body cfg rng
  in
  let regions =
    List.init cfg.n_scalars (fun k ->
        scalar (Printf.sprintf "s%d" k) (Value.int 0))
    @ [ array "arr" (max 1 cfg.arr_len) (Value.int 0) ]
  in
  program ~name:"generated" ~regions
    ~inputs:[ ("in0", List.init 5 Value.int) ]
    ~main:"main"
    (func "main" [] main_body :: workers)

let generate_nodes ?(n_nodes = 3) cfg rng =
  let labeled = generate cfg rng in
  let n_nodes = max 1 n_nodes in
  let node k = Printf.sprintf "n%d" k in
  let map =
    Node.make
      ~nodes:(List.init n_nodes node)
      ~assign:
        (("main", node 0)
        :: List.init cfg.n_threads (fun k ->
               (Printf.sprintf "worker%d" k, node ((k + 1) mod n_nodes))))
  in
  (labeled, map)
