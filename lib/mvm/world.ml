type cand = { tid : int; sid : int; fname : string }

type t = {
  name : string;
  pick_thread : step:int -> cand list -> int;
  pick_input : step:int -> tid:int -> chan:string -> domain:Value.t list -> Value.t;
  on_read : step:int -> tid:int -> sid:int -> region:string ->
    index:int option -> actual:Value.tagged -> Value.tagged;
  on_recv : step:int -> tid:int -> sid:int -> chan:string ->
    actual:Value.tagged -> Value.tagged;
  on_try_recv : step:int -> tid:int -> sid:int -> chan:string ->
    try_recv_decision;
  passive_try_recv : bool;
}

and try_recv_decision = Default | Force_fail | Force_value of Value.tagged

let identity_read ~step:_ ~tid:_ ~sid:_ ~region:_ ~index:_ ~actual = actual
let identity_recv ~step:_ ~tid:_ ~sid:_ ~chan:_ ~actual = actual
let default_try_recv ~step:_ ~tid:_ ~sid:_ ~chan:_ = Default

let random ~seed =
  let rng = Prng.create seed in
  {
    name = Printf.sprintf "random(seed=%d)" seed;
    pick_thread =
      (fun ~step:_ cands ->
        match cands with
        | [] -> invalid_arg "World.random: no candidates"
        | _ -> (Prng.pick rng cands).tid);
    pick_input =
      (fun ~step:_ ~tid:_ ~chan:_ ~domain ->
        match domain with
        | [] -> Value.unit
        | _ -> Prng.pick rng domain);
    on_read = identity_read;
    on_recv = identity_recv;
    on_try_recv = default_try_recv;
    passive_try_recv = true;
  }

(* Biased, not deterministic: a hot candidate wins 3 draws out of 4, the
   fourth falls back to a uniform pick over everyone. Keeping every
   schedule reachable preserves search completeness; the bias only shifts
   where the probability mass sits. *)
let prioritized ~seed ~prefer =
  let rng = Prng.create seed in
  {
    name = Printf.sprintf "prioritized(seed=%d)" seed;
    pick_thread =
      (fun ~step:_ cands ->
        match cands with
        | [] -> invalid_arg "World.prioritized: no candidates"
        | _ -> (
          match List.filter prefer cands with
          | [] -> (Prng.pick rng cands).tid
          | hot ->
            let pool = if Prng.int rng 4 > 0 then hot else cands in
            (Prng.pick rng pool).tid));
    pick_input =
      (fun ~step:_ ~tid:_ ~chan:_ ~domain ->
        match domain with
        | [] -> Value.unit
        | _ -> Prng.pick rng domain);
    on_read = identity_read;
    on_recv = identity_recv;
    on_try_recv = default_try_recv;
    passive_try_recv = true;
  }

let round_robin () =
  let last = ref (-1) in
  {
    name = "round-robin";
    pick_thread =
      (fun ~step:_ cands ->
        match cands with
        | [] -> invalid_arg "World.round_robin: no candidates"
        | _ ->
          let sorted = List.sort (fun a b -> compare a.tid b.tid) cands in
          let next =
            match List.find_opt (fun c -> c.tid > !last) sorted with
            | Some c -> c.tid
            | None -> (List.hd sorted).tid
          in
          last := next;
          next);
    pick_input =
      (fun ~step:_ ~tid:_ ~chan:_ ~domain ->
        match domain with [] -> Value.unit | v :: _ -> v);
    on_read = identity_read;
    on_recv = identity_recv;
    on_try_recv = default_try_recv;
    passive_try_recv = true;
  }

let with_name name w = { w with name }

let override_reads f w =
  {
    w with
    on_read =
      (fun ~step ~tid ~sid ~region ~index ~actual ->
        match f ~step ~tid ~sid ~region ~index ~actual with
        | Some v -> v
        | None -> w.on_read ~step ~tid ~sid ~region ~index ~actual);
  }

let override_recvs f w =
  {
    w with
    on_recv =
      (fun ~step ~tid ~sid ~chan ~actual ->
        match f ~step ~tid ~sid ~chan ~actual with
        | Some v -> v
        | None -> w.on_recv ~step ~tid ~sid ~chan ~actual);
  }
