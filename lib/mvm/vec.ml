type 'a t = { mutable data : 'a array; mutable len : int; hint : int }

let create ?(capacity = 0) () = { data = [||]; len = 0; hint = capacity }

let length v = v.len

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then max 16 v.hint else cap * 2 in
  let data' = Array.make cap' x in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.rev (fold (fun acc x -> x :: acc) [] v)

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v

let filter p v = List.rev (fold (fun acc x -> if p x then x :: acc else acc) [] v)

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let count p v = fold (fun n x -> if p x then n + 1 else n) 0 v
