(** The mini-VM interpreter.

    One call to {!run} executes a labelled program to completion under a
    {!World.t}, producing a {!result} with the full event trace. Threads
    interleave at statement granularity; a thread is a scheduling candidate
    only when its next statement can execute now (a receive on an empty
    channel or a lock held by another thread removes it from candidacy), so
    blocked threads consume no steps and deadlock is detected exactly. *)

type status =
  | Done  (** every thread ran to completion *)
  | Crashed of Failure.t  (** a thread crashed; the run stops immediately *)
  | Deadlock  (** live threads exist but none is a candidate *)
  | Step_limit  (** [max_steps] exhausted *)
  | Aborted of string  (** an [abort] callback cut the run short *)

type result = {
  status : status;
  trace : Trace.t;
  steps : int;  (** scheduler steps executed *)
  outputs : (string * Value.t list) list;  (** per-channel, emission order *)
  failure : Failure.t option;
      (** [Crashed f] yields [Some f]; [Deadlock]/[Step_limit] yield
          [Some Hang]; [Done] yields [None] until an I/O specification is
          applied (see {!Spec.apply}) *)
}

(** [run ?max_steps ?monitors ?abort ?trace_capacity labeled world]
    executes the program.

    [monitors] observe every event as it is emitted (recorders attach
    here). [abort] may return a reason to stop the run early (replay
    searches use it to prune executions whose outputs already diverge from
    the recording). [cancel] is a cheaper cousin of [abort] polled in the
    step loop only every 128 steps: search engines use it for wall-clock
    deadline checks, whose cost (a system clock read) would be prohibitive
    per event; a [Some reason] finishes the run as [Aborted reason].
    [trace_capacity] presizes the trace's backing store — search engines
    pass the previous attempt's event count so appends never reallocate.
    Default [max_steps] is 200_000.

    When [world.passive_try_recv] is [true] the interpreter caches its
    scheduling-candidate set between steps, patching only the executing
    thread's entry after purely thread-local statements; channel, lock and
    spawn operations rebuild it. The cached list is observationally
    identical to the recomputed one, so worlds see the same candidates in
    the same order either way. *)
val run :
  ?max_steps:int ->
  ?monitors:(Event.t -> unit) list ->
  ?abort:(Event.t -> string option) ->
  ?cancel:(unit -> string option) ->
  ?trace_capacity:int ->
  Label.labeled ->
  World.t ->
  result

(** [status_to_string s] is a short human-readable tag. *)
val status_to_string : status -> string

(** {1 Compiled form — the search hot path}

    Replay search executes one program under millions of worlds, so the
    per-step costs of the AST walk (function lookup by name, hashtable
    locals, list prepends for block entry, input-domain lookups) are paid
    millions of times for information that never changes. {!compile}
    lowers a labelled program once into flat per-function instruction
    arrays with pre-resolved jump targets, integer local slots, integer
    region ids and pre-resolved call targets; {!run_compiled} executes
    that form under exactly the same small-step semantics as {!run}:
    the event trace, result, crash messages and the sequence of world-hook
    calls are byte-identical (the proggen-corpus parity test in
    [test_mvm] and the qcheck laws in [test_props] enforce this). *)

(** A program lowered for fast execution. Immutable and domain-safe: one
    [compiled] value may be shared by concurrent runs on many domains. *)
type compiled

(** [compile labeled] lowers the program. The program must be validated
    (every [Label.program] is): compilation resolves region names
    eagerly and raises [Invalid_argument] on an undeclared region.
    Unknown call targets and arity mismatches are kept as runtime
    crashes, exactly as the AST walker reports them. *)
val compile : Label.labeled -> compiled

(** Reusable execution state (a per-domain arena): region tables,
    channel queues, lock table and thread vector, all sized for one
    compiled program. Passing one to consecutive {!run_compiled} calls
    hoists those allocations out of the per-attempt loop; the trace is
    deliberately not part of the arena, because accepted results retain
    their traces beyond the run that produced them. A state must not be
    shared between concurrent runs. *)
type state

(** [make_state c] is a fresh arena for [c]. *)
val make_state : compiled -> state

(** [run_compiled c world] executes the compiled program; all optional
    arguments behave exactly as on {!run}. [state] (re)uses an arena
    built by {!make_state} for the same [compiled] value — it is reset
    on entry, so no state leaks between runs.
    @raise Invalid_argument if [state] was built for a different
    program. *)
val run_compiled :
  ?max_steps:int ->
  ?monitors:(Event.t -> unit) list ->
  ?abort:(Event.t -> string option) ->
  ?cancel:(unit -> string option) ->
  ?trace_capacity:int ->
  ?state:state ->
  compiled ->
  World.t ->
  result
