(** Growable array (OCaml 5.1 has no [Dynarray]; this is the small subset the
    interpreter and trace need). *)

type 'a t

(** [create ()] is an empty vector. [capacity] is a sizing hint: the first
    push allocates a backing store of at least that many slots, so hot loops
    that know their eventual size (the interpreter's trace) skip the
    doubling cascade. No memory is committed before the first push. *)
val create : ?capacity:int -> unit -> 'a t

(** [length v] is the number of elements currently stored. *)
val length : 'a t -> int

(** [push v x] appends [x] at the end, growing the backing store as needed. *)
val push : 'a t -> 'a -> unit

(** [get v i] is the [i]-th element.
    @raise Invalid_argument if [i] is out of bounds. *)
val get : 'a t -> int -> 'a

(** [clear v] empties the vector without releasing its backing store, so a
    reused vector (an arena) skips the regrowth cascade on its next fill.
    Elements are not overwritten until pushed over. *)
val clear : 'a t -> unit

(** [iter f v] applies [f] to every element in insertion order. *)
val iter : ('a -> unit) -> 'a t -> unit

(** [fold f acc v] folds [f] over elements in insertion order. *)
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** [to_list v] is all elements in insertion order. *)
val to_list : 'a t -> 'a list

(** [of_list xs] is a vector holding [xs] in order. *)
val of_list : 'a list -> 'a t

(** [filter p v] is the list of elements satisfying [p], in order. *)
val filter : ('a -> bool) -> 'a t -> 'a list

(** [exists p v] is [true] iff some element satisfies [p]. *)
val exists : ('a -> bool) -> 'a t -> bool

(** [count p v] is the number of elements satisfying [p]. *)
val count : ('a -> bool) -> 'a t -> int
