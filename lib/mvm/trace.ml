type t = Event.t Vec.t

let create ?capacity () = Vec.create ?capacity ()
let append = Vec.push
let length = Vec.length
let events = Vec.to_list
let iter = Vec.iter
let fold = Vec.fold
let filter = Vec.filter
let exists = Vec.exists
let count = Vec.count

let steps t =
  count (fun (e : Event.t) -> match e.kind with Event.Step -> true | _ -> false) t

let outputs t =
  let tbl : (string, Value.t list) Hashtbl.t = Hashtbl.create 8 in
  iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Out io ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt tbl io.chan) in
        Hashtbl.replace tbl io.chan (io.value.Value.v :: prev)
      | _ -> ())
    t;
  Hashtbl.fold (fun chan vs acc -> (chan, List.rev vs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let outputs_on t chan =
  fold
    (fun acc (e : Event.t) ->
      match e.kind with
      | Event.Out io when String.equal io.chan chan -> io.value.Value.v :: acc
      | _ -> acc)
    [] t
  |> List.rev

let inputs_on t chan =
  fold
    (fun acc (e : Event.t) ->
      match e.kind with
      | Event.In io when String.equal io.chan chan ->
        (e.step, e.tid, io.value.Value.v) :: acc
      | _ -> acc)
    [] t
  |> List.rev

let reads_by t tid =
  fold
    (fun acc (e : Event.t) ->
      match e.kind with
      | Event.Read a when e.tid = tid -> a.value.Value.v :: acc
      | _ -> acc)
    [] t
  |> List.rev

let writes_to_scalar t region =
  fold
    (fun acc (e : Event.t) ->
      match e.kind with
      | Event.Write a when a.index = None && String.equal a.region region ->
        (e.step, e.tid, a.value.Value.v) :: acc
      | _ -> acc)
    [] t
  |> List.rev

let scalar_at t region ~init ~step =
  fold
    (fun acc (e : Event.t) ->
      match e.kind with
      | Event.Write a
        when a.index = None && String.equal a.region region && e.step < step ->
        a.value.Value.v
      | _ -> acc)
    init t

let array_cell_at t region ~index ~init ~step =
  fold
    (fun acc (e : Event.t) ->
      match e.kind with
      | Event.Write a
        when a.index = Some index && String.equal a.region region && e.step < step
        ->
        a.value.Value.v
      | _ -> acc)
    init t

let accesses_to t region =
  filter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Read a | Event.Write a -> String.equal a.region region
      | _ -> false)
    t

let sched_points t =
  fold
    (fun acc (e : Event.t) ->
      match e.kind with Event.Step -> (e.tid, e.sid) :: acc | _ -> acc)
    [] t
  |> List.rev

let pp ppf t =
  iter (fun e -> Format.fprintf ppf "%a@." Event.pp e) t
