open Ast

type status =
  | Done
  | Crashed of Failure.t
  | Deadlock
  | Step_limit
  | Aborted of string

type result = {
  status : status;
  trace : Trace.t;
  steps : int;
  outputs : (string * Value.t list) list;
  failure : Failure.t option;
}

let status_to_string = function
  | Done -> "done"
  | Crashed f -> "crashed: " ^ Failure.to_string f
  | Deadlock -> "deadlock"
  | Step_limit -> "step-limit"
  | Aborted reason -> "aborted: " ^ reason

type frame = {
  fname : string;
  locals : (string, Value.tagged) Hashtbl.t;
  mutable rest : stmt list;
  dest : string option;
}

type thread = { tid : int; mutable frames : frame list }

exception Crash_exn of string
exception Crash_at of int * string
exception Abort_exn of string

let atomic_budget = 10_000

let run ?(max_steps = 200_000) ?(monitors = []) ?abort ?cancel ?trace_capacity
    (labeled : Label.labeled) (world : World.t) =
  let prog = labeled.Label.prog in
  let mem = Memory.create prog.regions in
  let chans = Channel.create () in
  let locks : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let trace = Trace.create ?capacity:trace_capacity () in
  let threads : thread Vec.t = Vec.create () in
  let step_count = ref 0 in

  let emit ~tid ~sid ~fname kind =
    let e = { Event.step = !step_count; tid; sid; fname; kind } in
    Trace.append trace e;
    List.iter (fun m -> m e) monitors;
    match abort with
    | None -> ()
    | Some check -> (
      match check e with None -> () | Some reason -> raise (Abort_exn reason))
  in

  let make_frame fn_name dest argv =
    match find_func prog fn_name with
    | None -> raise (Crash_exn ("undefined function " ^ fn_name))
    | Some f ->
      if List.length f.params <> List.length argv then
        raise
          (Crash_exn
             (Printf.sprintf "%s expects %d arguments, got %d" fn_name
                (List.length f.params) (List.length argv)));
      let locals = Hashtbl.create 8 in
      List.iter2 (fun p a -> Hashtbl.replace locals p a) f.params argv;
      { fname = f.fname; locals; rest = f.body; dest }
  in

  let spawn_thread fn_name argv =
    let tid = Vec.length threads in
    let frame = make_frame fn_name None argv in
    Vec.push threads { tid; frames = [ frame ] };
    tid
  in

  ignore (spawn_thread prog.main []);

  (* Implicit returns: pop frames whose statements are exhausted, binding
     unit to the caller's destination variable, until the next statement (if
     any) is exposed. *)
  let rec normalize th =
    match th.frames with
    | [] -> ()
    | f :: callers -> (
      match f.rest with
      | _ :: _ -> ()
      | [] ->
        th.frames <- callers;
        (match callers, f.dest with
        | caller :: _, Some x ->
          Hashtbl.replace caller.locals x (Value.untainted Value.unit)
        | _, _ -> ());
        normalize th)
  in

  let next_stmt th =
    normalize th;
    match th.frames with
    | [] -> None
    | f :: _ -> ( match f.rest with [] -> None | s :: _ -> Some s)
  in

  let lock_owner m = Hashtbl.find_opt locks m in

  (* A thread is a scheduling candidate iff its next statement can execute
     now; this makes blocked threads invisible to the scheduler and turns
     "no candidates, live threads" into exact deadlock detection. *)
  let executable tid s =
    match s.node with
    | Recv (_, ch) ->
      not (Channel.is_empty chans ch)
      || (match
            world.World.on_try_recv ~step:!step_count ~tid ~sid:s.sid ~chan:ch
          with
         | World.Force_value _ -> true
         | World.Force_fail | World.Default -> false)
    | Lock m -> ( match lock_owner m with None -> true | Some o -> o = tid)
    | Skip | Assign _ | Store _ | Store_scalar _ | If _ | While _ | Input _
    | Output _ | Send _ | Try_recv _ | Unlock _ | Spawn _ | Call _ | Return _
    | Assert _ | Fail _ | Yield | Atomic _ ->
      true
  in

  let rebuild_candidates () =
    Vec.fold
      (fun acc th ->
        match next_stmt th with
        | Some s when executable th.tid s ->
          { World.tid = th.tid; sid = s.sid; fname = (List.hd th.frames).fname }
          :: acc
        | _ -> acc)
      [] threads
    |> List.rev
  in

  (* Candidate cache (the search fast path). A purely thread-local
     statement can only change the executing thread's own entry, so under
     a passive world (see World.passive_try_recv) the cached list is
     patched in place instead of being rebuilt — search engines execute
     this scheduler millions of times, and most steps are local. Any
     statement that touches channels, locks or the thread table
     invalidates the cache; non-passive worlds bypass it entirely, so
     replay oracles keep their exact per-step semantics. *)
  let cand_cache : World.cand list ref = ref [] in
  let cache_valid = ref false in
  let use_cache = world.World.passive_try_recv in
  let candidates () =
    if not use_cache then rebuild_candidates ()
    else if !cache_valid then !cand_cache
    else begin
      let cs = rebuild_candidates () in
      cand_cache := cs;
      cache_valid := true;
      cs
    end
  in

  (* Statements that cannot affect any OTHER thread's runnability: they
     touch no channel, no lock and spawn nothing. [Fail] ends the run, so
     its classification never matters; it is kept non-local for safety. *)
  let local_node = function
    | Skip | Assign _ | Store _ | Store_scalar _ | If _ | While _ | Input _
    | Output _ | Yield | Assert _ | Call _ | Return _ ->
      true
    | Send _ | Recv _ | Try_recv _ | Lock _ | Unlock _ | Spawn _ | Atomic _
    | Fail _ ->
      false
  in

  let patch_candidate th =
    match next_stmt th with
    | Some s when executable th.tid s ->
      let c =
        { World.tid = th.tid; sid = s.sid; fname = (List.hd th.frames).fname }
      in
      cand_cache :=
        List.map
          (fun (c0 : World.cand) -> if c0.World.tid = th.tid then c else c0)
          !cand_cache
    | _ ->
      cand_cache :=
        List.filter (fun (c0 : World.cand) -> c0.World.tid <> th.tid) !cand_cache
  in

  let binop_apply op (a : Value.tagged) (b : Value.tagged) =
    let taint = Taint.union a.Value.taint b.Value.taint in
    let open Value in
    let iv f = tag (int (f (as_int a.v) (as_int b.v))) taint in
    let bv f = tag (bool (f (as_int a.v) (as_int b.v))) taint in
    let lv f = tag (bool (f (as_bool a.v) (as_bool b.v))) taint in
    match op with
    | Add -> iv ( + )
    | Sub -> iv ( - )
    | Mul -> iv ( * )
    | Div ->
      if as_int b.v = 0 then raise (Crash_exn "division by zero") else iv ( / )
    | Mod ->
      if as_int b.v = 0 then raise (Crash_exn "modulo by zero") else iv ( mod )
    | Min -> iv min
    | Max -> iv max
    | Lt -> bv ( < )
    | Le -> bv ( <= )
    | Gt -> bv ( > )
    | Ge -> bv ( >= )
    | Eq -> tag (bool (equal a.v b.v)) taint
    | Ne -> tag (bool (not (equal a.v b.v))) taint
    | And -> lv ( && )
    | Or -> lv ( || )
    | Concat -> tag (str (as_str a.v ^ as_str b.v)) taint
  in

  let unop_apply op (a : Value.tagged) =
    let open Value in
    match op with
    | Not -> tag (bool (not (as_bool a.v))) a.taint
    | Neg -> tag (int (-as_int a.v)) a.taint
    | Str_len -> tag (int (String.length (as_str a.v))) a.taint
  in

  let rec eval th ~sid ~fname e =
    match e with
    | Const v -> Value.untainted v
    | Var x -> (
      match th.frames with
      | [] -> raise (Crash_exn "no frame")
      | f :: _ -> (
        match Hashtbl.find_opt f.locals x with
        | Some v -> v
        | None -> raise (Crash_exn ("unbound variable " ^ x))))
    | Load_scalar r ->
      let actual = Memory.load mem r in
      let v =
        world.World.on_read ~step:!step_count ~tid:th.tid ~sid ~region:r
          ~index:None ~actual
      in
      emit ~tid:th.tid ~sid ~fname (Event.Read { region = r; index = None; value = v });
      v
    | Load (r, ie) -> (
      let i = Value.as_int (eval th ~sid ~fname ie).Value.v in
      match Memory.load_arr mem r i with
      | actual ->
        let v =
          world.World.on_read ~step:!step_count ~tid:th.tid ~sid ~region:r
            ~index:(Some i) ~actual
        in
        emit ~tid:th.tid ~sid ~fname
          (Event.Read { region = r; index = Some i; value = v });
        v
      | exception Memory.Bounds { region; index; length } ->
        raise
          (Crash_exn
             (Printf.sprintf "array %s index %d out of bounds (length %d)" region
                index length)))
    | Arr_len r -> Value.untainted (Value.int (Memory.arr_length mem r))
    | Binop (op, a, b) ->
      let va = eval th ~sid ~fname a in
      let vb = eval th ~sid ~fname b in
      binop_apply op va vb
    | Unop (op, a) -> unop_apply op (eval th ~sid ~fname a)
  in

  let set_local th x v =
    match th.frames with
    | [] -> raise (Crash_exn "no frame")
    | f :: _ -> Hashtbl.replace f.locals x v
  in

  let pop_stmt th =
    match th.frames with
    | { rest = _ :: tail; _ } as f :: _ -> f.rest <- tail
    | _ -> assert false
  in

  let push_stmts th stmts =
    match th.frames with
    | f :: _ -> f.rest <- stmts @ f.rest
    | [] -> assert false
  in

  (* [atomic] (a step budget) forbids operations that could block or grow
     the frame stack mid-step; atomic blocks are for small read-modify-write
     sequences. *)
  let rec exec_node th ~atomic (s : stmt) =
    let in_atomic = Option.is_some atomic in
    (match atomic with
    | Some b ->
      decr b;
      if !b <= 0 then raise (Crash_exn "atomic budget exhausted")
    | None -> ());
    let sid = s.sid in
    let fname = match th.frames with f :: _ -> f.fname | [] -> "?" in
    let ev k = emit ~tid:th.tid ~sid ~fname k in
    let eval_ e = eval th ~sid ~fname e in
    match s.node with
    | Skip | Yield -> ()
    | Assign (x, e) -> set_local th x (eval_ e)
    | Store (r, ie, e) -> (
      let i = Value.as_int (eval_ ie).Value.v in
      let v = eval_ e in
      match Memory.store_arr mem r i v with
      | () -> ev (Event.Write { region = r; index = Some i; value = v })
      | exception Memory.Bounds { region; index; length } ->
        raise
          (Crash_exn
             (Printf.sprintf "array %s index %d out of bounds (length %d)" region
                index length)))
    | Store_scalar (r, e) ->
      let v = eval_ e in
      Memory.store mem r v;
      ev (Event.Write { region = r; index = None; value = v })
    | If (c, b1, b2) ->
      let cond = Value.as_bool (eval_ c).Value.v in
      if in_atomic then exec_block th ~atomic (if cond then b1 else b2)
      else push_stmts th (if cond then b1 else b2)
    | While (c, body) ->
      let cond = Value.as_bool (eval_ c).Value.v in
      if in_atomic then (
        if cond then (
          exec_block th ~atomic body;
          exec_node th ~atomic s))
      else if cond then push_stmts th (body @ [ s ])
    | Input (x, ch) ->
      let domain = Option.value ~default:[] (domain_of prog ch) in
      let v0 =
        world.World.pick_input ~step:!step_count ~tid:th.tid ~chan:ch ~domain
      in
      let v = Value.tag v0 (Taint.singleton ch) in
      set_local th x v;
      ev (Event.In { chan = ch; value = v })
    | Output (ch, e) ->
      let v = eval_ e in
      ev (Event.Out { chan = ch; value = v })
    | Send (ch, e) ->
      let v = eval_ e in
      Channel.send chans ch v;
      ev (Event.Msg_send { chan = ch; value = v })
    | Recv (x, ch) -> (
      match Channel.recv chans ch with
      | Some actual ->
        let v =
          world.World.on_recv ~step:!step_count ~tid:th.tid ~sid ~chan:ch
            ~actual
        in
        set_local th x v;
        ev (Event.Msg_recv { chan = ch; value = v })
      | None -> (
        (* empty queue: only runnable when an oracle feeds the value *)
        match
          world.World.on_try_recv ~step:!step_count ~tid:th.tid ~sid ~chan:ch
        with
        | World.Force_value forced ->
          let v =
            world.World.on_recv ~step:!step_count ~tid:th.tid ~sid ~chan:ch
              ~actual:forced
          in
          set_local th x v;
          ev (Event.Msg_recv { chan = ch; value = v })
        | World.Force_fail | World.Default ->
          raise (Crash_exn ("recv on empty channel " ^ ch ^ " inside atomic"))))
    | Try_recv (ok, x, ch) -> (
      let succeed v =
        set_local th ok (Value.untainted (Value.bool true));
        set_local th x v;
        ev (Event.Msg_recv { chan = ch; value = v })
      in
      let miss () =
        set_local th ok (Value.untainted (Value.bool false));
        set_local th x (Value.untainted Value.unit)
      in
      match
        world.World.on_try_recv ~step:!step_count ~tid:th.tid ~sid ~chan:ch
      with
      | World.Force_fail -> miss ()
      | World.Force_value forced ->
        (* the forced success stands for a real message: consume the
           physical head if one is there, and let on_recv (the stateful
           oracle) supply the observed value *)
        ignore (Channel.recv chans ch);
        succeed
          (world.World.on_recv ~step:!step_count ~tid:th.tid ~sid ~chan:ch
             ~actual:forced)
      | World.Default -> (
        match Channel.recv chans ch with
        | Some actual ->
          succeed
            (world.World.on_recv ~step:!step_count ~tid:th.tid ~sid ~chan:ch
               ~actual)
        | None -> miss ()))
    | Lock m -> (
      match lock_owner m with
      | Some o when o = th.tid -> raise (Crash_exn ("relock of mutex " ^ m))
      | Some _ -> raise (Crash_exn ("lock contention on " ^ m ^ " inside atomic"))
      | None ->
        Hashtbl.replace locks m th.tid;
        ev (Event.Lock_acq m))
    | Unlock m -> (
      match lock_owner m with
      | Some o when o = th.tid ->
        Hashtbl.remove locks m;
        ev (Event.Lock_rel m)
      | Some _ | None -> raise (Crash_exn ("unlock of mutex " ^ m ^ " not held")))
    | Spawn (fn, args) ->
      if in_atomic then raise (Crash_exn "spawn inside atomic");
      let argv = List.map eval_ args in
      let child = spawn_thread fn argv in
      ev (Event.Spawned { child; fname = fn })
    | Call (dest, fn, args) ->
      if in_atomic then raise (Crash_exn "call inside atomic");
      let argv = List.map eval_ args in
      let frame = make_frame fn dest argv in
      th.frames <- frame :: th.frames
    | Return e ->
      if in_atomic then raise (Crash_exn "return inside atomic");
      let v = eval_ e in
      (match th.frames with
      | f :: callers ->
        th.frames <- callers;
        (match callers, f.dest with
        | caller :: _, Some x -> Hashtbl.replace caller.locals x v
        | _, _ -> ())
      | [] -> raise (Crash_exn "return without frame"))
    | Assert (e, msg) ->
      if not (Value.as_bool (eval_ e).Value.v) then
        raise (Crash_exn ("assertion failed: " ^ msg))
    | Fail msg -> raise (Crash_exn msg)
    | Atomic body ->
      let atomic =
        match atomic with Some _ -> atomic | None -> Some (ref atomic_budget)
      in
      exec_block th ~atomic body

  and exec_block th ~atomic body = List.iter (exec_node th ~atomic) body in

  let exec_step th =
    match next_stmt th with
    | None -> assert false
    | Some s ->
      let fname = match th.frames with f :: _ -> f.fname | [] -> "?" in
      emit ~tid:th.tid ~sid:s.sid ~fname Event.Step;
      pop_stmt th;
      (try exec_node th ~atomic:None s with
      | Crash_exn msg ->
        emit ~tid:th.tid ~sid:s.sid ~fname (Event.Crashed msg);
        raise (Crash_at (s.sid, msg))
      | Value.Type_error msg ->
        emit ~tid:th.tid ~sid:s.sid ~fname (Event.Crashed msg);
        raise (Crash_at (s.sid, msg)));
      if use_cache && !cache_valid then
        if local_node s.node then patch_candidate th else cache_valid := false
  in

  let finish status =
    let failure =
      match status with
      | Crashed f -> Some f
      | Deadlock | Step_limit -> Some Failure.Hang
      | Done | Aborted _ -> None
    in
    { status; trace; steps = !step_count; outputs = Trace.outputs trace; failure }
  in

  (* Cooperative cancellation, polled in the step loop rather than per
     event: [cancel] exists for wall-clock deadlines whose check (a
     gettimeofday) is too expensive for the per-event abort hook, so it
     is consulted only every 128 steps. *)
  let cancelled () =
    match cancel with
    | Some check when !step_count land 127 = 0 -> check ()
    | _ -> None
  in
  let rec loop () =
    if !step_count >= max_steps then finish Step_limit
    else
      match cancelled () with
      | Some reason -> finish (Aborted reason)
      | None -> (
      match candidates () with
      | [] ->
        let alive = Vec.exists (fun th -> th.frames <> []) threads in
        if alive then finish Deadlock else finish Done
      | cands -> (
        let tid = world.World.pick_thread ~step:!step_count cands in
        match Vec.get threads tid with
        | exception Invalid_argument _ ->
          invalid_arg "Interp: world picked an unknown thread"
        | th ->
          if not (List.exists (fun c -> c.World.tid = tid) cands) then
            invalid_arg "Interp: world picked a non-candidate thread";
          exec_step th;
          incr step_count;
          loop ()))
  in
  try loop () with
  | Crash_at (sid, msg) -> finish (Crashed (Failure.Crash { sid; msg }))
  | Abort_exn reason -> finish (Aborted reason)
