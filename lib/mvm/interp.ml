open Ast

type status =
  | Done
  | Crashed of Failure.t
  | Deadlock
  | Step_limit
  | Aborted of string

type result = {
  status : status;
  trace : Trace.t;
  steps : int;
  outputs : (string * Value.t list) list;
  failure : Failure.t option;
}

let status_to_string = function
  | Done -> "done"
  | Crashed f -> "crashed: " ^ Failure.to_string f
  | Deadlock -> "deadlock"
  | Step_limit -> "step-limit"
  | Aborted reason -> "aborted: " ^ reason

type frame = {
  fname : string;
  locals : (string, Value.tagged) Hashtbl.t;
  mutable rest : stmt list;
  dest : string option;
}

type thread = { tid : int; mutable frames : frame list }

exception Crash_exn of string
exception Crash_at of int * string
exception Abort_exn of string

let atomic_budget = 10_000

let binop_apply op (a : Value.tagged) (b : Value.tagged) =
  let taint = Taint.union a.Value.taint b.Value.taint in
  let open Value in
  let iv f = tag (int (f (as_int a.v) (as_int b.v))) taint in
  let bv f = tag (bool (f (as_int a.v) (as_int b.v))) taint in
  let lv f = tag (bool (f (as_bool a.v) (as_bool b.v))) taint in
  match op with
  | Add -> iv ( + )
  | Sub -> iv ( - )
  | Mul -> iv ( * )
  | Div ->
    if as_int b.v = 0 then raise (Crash_exn "division by zero") else iv ( / )
  | Mod ->
    if as_int b.v = 0 then raise (Crash_exn "modulo by zero") else iv ( mod )
  | Min -> iv min
  | Max -> iv max
  | Lt -> bv ( < )
  | Le -> bv ( <= )
  | Gt -> bv ( > )
  | Ge -> bv ( >= )
  | Eq -> tag (bool (equal a.v b.v)) taint
  | Ne -> tag (bool (not (equal a.v b.v))) taint
  | And -> lv ( && )
  | Or -> lv ( || )
  | Concat -> tag (str (as_str a.v ^ as_str b.v)) taint

let unop_apply op (a : Value.tagged) =
  let open Value in
  match op with
  | Not -> tag (bool (not (as_bool a.v))) a.taint
  | Neg -> tag (int (-as_int a.v)) a.taint
  | Str_len -> tag (int (String.length (as_str a.v))) a.taint

let run ?(max_steps = 200_000) ?(monitors = []) ?abort ?cancel ?trace_capacity
    (labeled : Label.labeled) (world : World.t) =
  let prog = labeled.Label.prog in
  let mem = Memory.create prog.regions in
  let chans = Channel.create () in
  let locks : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let trace = Trace.create ?capacity:trace_capacity () in
  let threads : thread Vec.t = Vec.create () in
  let step_count = ref 0 in

  let emit ~tid ~sid ~fname kind =
    let e = { Event.step = !step_count; tid; sid; fname; kind } in
    Trace.append trace e;
    List.iter (fun m -> m e) monitors;
    match abort with
    | None -> ()
    | Some check -> (
      match check e with None -> () | Some reason -> raise (Abort_exn reason))
  in

  let make_frame fn_name dest argv =
    match find_func prog fn_name with
    | None -> raise (Crash_exn ("undefined function " ^ fn_name))
    | Some f ->
      if List.length f.params <> List.length argv then
        raise
          (Crash_exn
             (Printf.sprintf "%s expects %d arguments, got %d" fn_name
                (List.length f.params) (List.length argv)));
      let locals = Hashtbl.create 8 in
      List.iter2 (fun p a -> Hashtbl.replace locals p a) f.params argv;
      { fname = f.fname; locals; rest = f.body; dest }
  in

  let spawn_thread fn_name argv =
    let tid = Vec.length threads in
    let frame = make_frame fn_name None argv in
    Vec.push threads { tid; frames = [ frame ] };
    tid
  in

  ignore (spawn_thread prog.main []);

  (* Implicit returns: pop frames whose statements are exhausted, binding
     unit to the caller's destination variable, until the next statement (if
     any) is exposed. *)
  let rec normalize th =
    match th.frames with
    | [] -> ()
    | f :: callers -> (
      match f.rest with
      | _ :: _ -> ()
      | [] ->
        th.frames <- callers;
        (match callers, f.dest with
        | caller :: _, Some x ->
          Hashtbl.replace caller.locals x (Value.untainted Value.unit)
        | _, _ -> ());
        normalize th)
  in

  let next_stmt th =
    normalize th;
    match th.frames with
    | [] -> None
    | f :: _ -> ( match f.rest with [] -> None | s :: _ -> Some s)
  in

  let lock_owner m = Hashtbl.find_opt locks m in

  (* A thread is a scheduling candidate iff its next statement can execute
     now; this makes blocked threads invisible to the scheduler and turns
     "no candidates, live threads" into exact deadlock detection. *)
  let executable tid s =
    match s.node with
    | Recv (_, ch) ->
      not (Channel.is_empty chans ch)
      || (match
            world.World.on_try_recv ~step:!step_count ~tid ~sid:s.sid ~chan:ch
          with
         | World.Force_value _ -> true
         | World.Force_fail | World.Default -> false)
    | Lock m -> ( match lock_owner m with None -> true | Some o -> o = tid)
    | Skip | Assign _ | Store _ | Store_scalar _ | If _ | While _ | Input _
    | Output _ | Send _ | Try_recv _ | Unlock _ | Spawn _ | Call _ | Return _
    | Assert _ | Fail _ | Yield | Atomic _ ->
      true
  in

  let rebuild_candidates () =
    Vec.fold
      (fun acc th ->
        match next_stmt th with
        | Some s when executable th.tid s ->
          { World.tid = th.tid; sid = s.sid; fname = (List.hd th.frames).fname }
          :: acc
        | _ -> acc)
      [] threads
    |> List.rev
  in

  (* Candidate cache (the search fast path). A purely thread-local
     statement can only change the executing thread's own entry, so under
     a passive world (see World.passive_try_recv) the cached list is
     patched in place instead of being rebuilt — search engines execute
     this scheduler millions of times, and most steps are local. Any
     statement that touches channels, locks or the thread table
     invalidates the cache; non-passive worlds bypass it entirely, so
     replay oracles keep their exact per-step semantics. *)
  let cand_cache : World.cand list ref = ref [] in
  let cache_valid = ref false in
  let use_cache = world.World.passive_try_recv in
  let candidates () =
    if not use_cache then rebuild_candidates ()
    else if !cache_valid then !cand_cache
    else begin
      let cs = rebuild_candidates () in
      cand_cache := cs;
      cache_valid := true;
      cs
    end
  in

  (* Statements that cannot affect any OTHER thread's runnability: they
     touch no channel, no lock and spawn nothing. [Fail] ends the run, so
     its classification never matters; it is kept non-local for safety. *)
  let local_node = function
    | Skip | Assign _ | Store _ | Store_scalar _ | If _ | While _ | Input _
    | Output _ | Yield | Assert _ | Call _ | Return _ ->
      true
    | Send _ | Recv _ | Try_recv _ | Lock _ | Unlock _ | Spawn _ | Atomic _
    | Fail _ ->
      false
  in

  let patch_candidate th =
    match next_stmt th with
    | Some s when executable th.tid s ->
      let c =
        { World.tid = th.tid; sid = s.sid; fname = (List.hd th.frames).fname }
      in
      cand_cache :=
        List.map
          (fun (c0 : World.cand) -> if c0.World.tid = th.tid then c else c0)
          !cand_cache
    | _ ->
      cand_cache :=
        List.filter (fun (c0 : World.cand) -> c0.World.tid <> th.tid) !cand_cache
  in

  let rec eval th ~sid ~fname e =
    match e with
    | Const v -> Value.untainted v
    | Var x -> (
      match th.frames with
      | [] -> raise (Crash_exn "no frame")
      | f :: _ -> (
        match Hashtbl.find_opt f.locals x with
        | Some v -> v
        | None -> raise (Crash_exn ("unbound variable " ^ x))))
    | Load_scalar r ->
      let actual = Memory.load mem r in
      let v =
        world.World.on_read ~step:!step_count ~tid:th.tid ~sid ~region:r
          ~index:None ~actual
      in
      emit ~tid:th.tid ~sid ~fname (Event.Read { region = r; index = None; value = v });
      v
    | Load (r, ie) -> (
      let i = Value.as_int (eval th ~sid ~fname ie).Value.v in
      match Memory.load_arr mem r i with
      | actual ->
        let v =
          world.World.on_read ~step:!step_count ~tid:th.tid ~sid ~region:r
            ~index:(Some i) ~actual
        in
        emit ~tid:th.tid ~sid ~fname
          (Event.Read { region = r; index = Some i; value = v });
        v
      | exception Memory.Bounds { region; index; length } ->
        raise
          (Crash_exn
             (Printf.sprintf "array %s index %d out of bounds (length %d)" region
                index length)))
    | Arr_len r -> Value.untainted (Value.int (Memory.arr_length mem r))
    | Binop (op, a, b) ->
      let va = eval th ~sid ~fname a in
      let vb = eval th ~sid ~fname b in
      binop_apply op va vb
    | Unop (op, a) -> unop_apply op (eval th ~sid ~fname a)
  in

  let set_local th x v =
    match th.frames with
    | [] -> raise (Crash_exn "no frame")
    | f :: _ -> Hashtbl.replace f.locals x v
  in

  let pop_stmt th =
    match th.frames with
    | { rest = _ :: tail; _ } as f :: _ -> f.rest <- tail
    | _ -> assert false
  in

  let push_stmts th stmts =
    match th.frames with
    | f :: _ -> f.rest <- stmts @ f.rest
    | [] -> assert false
  in

  (* [atomic] (a step budget) forbids operations that could block or grow
     the frame stack mid-step; atomic blocks are for small read-modify-write
     sequences. *)
  let rec exec_node th ~atomic (s : stmt) =
    let in_atomic = Option.is_some atomic in
    (match atomic with
    | Some b ->
      decr b;
      if !b <= 0 then raise (Crash_exn "atomic budget exhausted")
    | None -> ());
    let sid = s.sid in
    let fname = match th.frames with f :: _ -> f.fname | [] -> "?" in
    let ev k = emit ~tid:th.tid ~sid ~fname k in
    let eval_ e = eval th ~sid ~fname e in
    match s.node with
    | Skip | Yield -> ()
    | Assign (x, e) -> set_local th x (eval_ e)
    | Store (r, ie, e) -> (
      let i = Value.as_int (eval_ ie).Value.v in
      let v = eval_ e in
      match Memory.store_arr mem r i v with
      | () -> ev (Event.Write { region = r; index = Some i; value = v })
      | exception Memory.Bounds { region; index; length } ->
        raise
          (Crash_exn
             (Printf.sprintf "array %s index %d out of bounds (length %d)" region
                index length)))
    | Store_scalar (r, e) ->
      let v = eval_ e in
      Memory.store mem r v;
      ev (Event.Write { region = r; index = None; value = v })
    | If (c, b1, b2) ->
      let cond = Value.as_bool (eval_ c).Value.v in
      if in_atomic then exec_block th ~atomic (if cond then b1 else b2)
      else push_stmts th (if cond then b1 else b2)
    | While (c, body) ->
      let cond = Value.as_bool (eval_ c).Value.v in
      if in_atomic then (
        if cond then (
          exec_block th ~atomic body;
          exec_node th ~atomic s))
      else if cond then push_stmts th (body @ [ s ])
    | Input (x, ch) ->
      let domain = Option.value ~default:[] (domain_of prog ch) in
      let v0 =
        world.World.pick_input ~step:!step_count ~tid:th.tid ~chan:ch ~domain
      in
      let v = Value.tag v0 (Taint.singleton ch) in
      set_local th x v;
      ev (Event.In { chan = ch; value = v })
    | Output (ch, e) ->
      let v = eval_ e in
      ev (Event.Out { chan = ch; value = v })
    | Send (ch, e) ->
      let v = eval_ e in
      Channel.send chans ch v;
      ev (Event.Msg_send { chan = ch; value = v })
    | Recv (x, ch) -> (
      match Channel.recv chans ch with
      | Some actual ->
        let v =
          world.World.on_recv ~step:!step_count ~tid:th.tid ~sid ~chan:ch
            ~actual
        in
        set_local th x v;
        ev (Event.Msg_recv { chan = ch; value = v })
      | None -> (
        (* empty queue: only runnable when an oracle feeds the value *)
        match
          world.World.on_try_recv ~step:!step_count ~tid:th.tid ~sid ~chan:ch
        with
        | World.Force_value forced ->
          let v =
            world.World.on_recv ~step:!step_count ~tid:th.tid ~sid ~chan:ch
              ~actual:forced
          in
          set_local th x v;
          ev (Event.Msg_recv { chan = ch; value = v })
        | World.Force_fail | World.Default ->
          raise (Crash_exn ("recv on empty channel " ^ ch ^ " inside atomic"))))
    | Try_recv (ok, x, ch) -> (
      let succeed v =
        set_local th ok (Value.untainted (Value.bool true));
        set_local th x v;
        ev (Event.Msg_recv { chan = ch; value = v })
      in
      let miss () =
        set_local th ok (Value.untainted (Value.bool false));
        set_local th x (Value.untainted Value.unit)
      in
      match
        world.World.on_try_recv ~step:!step_count ~tid:th.tid ~sid ~chan:ch
      with
      | World.Force_fail -> miss ()
      | World.Force_value forced ->
        (* the forced success stands for a real message: consume the
           physical head if one is there, and let on_recv (the stateful
           oracle) supply the observed value *)
        ignore (Channel.recv chans ch);
        succeed
          (world.World.on_recv ~step:!step_count ~tid:th.tid ~sid ~chan:ch
             ~actual:forced)
      | World.Default -> (
        match Channel.recv chans ch with
        | Some actual ->
          succeed
            (world.World.on_recv ~step:!step_count ~tid:th.tid ~sid ~chan:ch
               ~actual)
        | None -> miss ()))
    | Lock m -> (
      match lock_owner m with
      | Some o when o = th.tid -> raise (Crash_exn ("relock of mutex " ^ m))
      | Some _ -> raise (Crash_exn ("lock contention on " ^ m ^ " inside atomic"))
      | None ->
        Hashtbl.replace locks m th.tid;
        ev (Event.Lock_acq m))
    | Unlock m -> (
      match lock_owner m with
      | Some o when o = th.tid ->
        Hashtbl.remove locks m;
        ev (Event.Lock_rel m)
      | Some _ | None -> raise (Crash_exn ("unlock of mutex " ^ m ^ " not held")))
    | Spawn (fn, args) ->
      if in_atomic then raise (Crash_exn "spawn inside atomic");
      let argv = List.map eval_ args in
      let child = spawn_thread fn argv in
      ev (Event.Spawned { child; fname = fn })
    | Call (dest, fn, args) ->
      if in_atomic then raise (Crash_exn "call inside atomic");
      let argv = List.map eval_ args in
      let frame = make_frame fn dest argv in
      th.frames <- frame :: th.frames
    | Return e ->
      if in_atomic then raise (Crash_exn "return inside atomic");
      let v = eval_ e in
      (match th.frames with
      | f :: callers ->
        th.frames <- callers;
        (match callers, f.dest with
        | caller :: _, Some x -> Hashtbl.replace caller.locals x v
        | _, _ -> ())
      | [] -> raise (Crash_exn "return without frame"))
    | Assert (e, msg) ->
      if not (Value.as_bool (eval_ e).Value.v) then
        raise (Crash_exn ("assertion failed: " ^ msg))
    | Fail msg -> raise (Crash_exn msg)
    | Atomic body ->
      let atomic =
        match atomic with Some _ -> atomic | None -> Some (ref atomic_budget)
      in
      exec_block th ~atomic body

  and exec_block th ~atomic body = List.iter (exec_node th ~atomic) body in

  let exec_step th =
    match next_stmt th with
    | None -> assert false
    | Some s ->
      let fname = match th.frames with f :: _ -> f.fname | [] -> "?" in
      emit ~tid:th.tid ~sid:s.sid ~fname Event.Step;
      pop_stmt th;
      (try exec_node th ~atomic:None s with
      | Crash_exn msg ->
        emit ~tid:th.tid ~sid:s.sid ~fname (Event.Crashed msg);
        raise (Crash_at (s.sid, msg))
      | Value.Type_error msg ->
        emit ~tid:th.tid ~sid:s.sid ~fname (Event.Crashed msg);
        raise (Crash_at (s.sid, msg)));
      if use_cache && !cache_valid then
        if local_node s.node then patch_candidate th else cache_valid := false
  in

  let finish status =
    let failure =
      match status with
      | Crashed f -> Some f
      | Deadlock | Step_limit -> Some Failure.Hang
      | Done | Aborted _ -> None
    in
    { status; trace; steps = !step_count; outputs = Trace.outputs trace; failure }
  in

  (* Cooperative cancellation, polled in the step loop rather than per
     event: [cancel] exists for wall-clock deadlines whose check (a
     gettimeofday) is too expensive for the per-event abort hook, so it
     is consulted only every 128 steps. *)
  let cancelled () =
    match cancel with
    | Some check when !step_count land 127 = 0 -> check ()
    | _ -> None
  in
  let rec loop () =
    if !step_count >= max_steps then finish Step_limit
    else
      match cancelled () with
      | Some reason -> finish (Aborted reason)
      | None -> (
      match candidates () with
      | [] ->
        let alive = Vec.exists (fun th -> th.frames <> []) threads in
        if alive then finish Deadlock else finish Done
      | cands -> (
        let tid = world.World.pick_thread ~step:!step_count cands in
        match Vec.get threads tid with
        | exception Invalid_argument _ ->
          invalid_arg "Interp: world picked an unknown thread"
        | th ->
          if not (List.exists (fun c -> c.World.tid = tid) cands) then
            invalid_arg "Interp: world picked a non-candidate thread";
          exec_step th;
          incr step_count;
          loop ()))
  in
  try loop () with
  | Crash_at (sid, msg) -> finish (Crashed (Failure.Crash { sid; msg }))
  | Abort_exn reason -> finish (Aborted reason)

(* ------------------------------------------------------------------ *)
(* Compiled form: the search hot path.                                *)
(*                                                                    *)
(* Search engines execute the same program millions of times, so the  *)
(* AST walk above pays per step for work that never changes between   *)
(* runs: function lookup by name, locals in a hashtable, block        *)
(* prepends onto the [rest] list, input-domain lookups, taint-set     *)
(* construction. [compile] does all of that once, lowering each       *)
(* function body to a flat instruction array with pre-resolved jump   *)
(* targets, integer local slots, integer region ids and pre-resolved  *)
(* callees; [run_compiled] then replays the exact small-step          *)
(* semantics of [run] over that form — same events, same crash        *)
(* messages, same world-hook call sequence, byte-identical traces.    *)
(* Atomic blocks keep a nested (tree) encoding because they execute   *)
(* inside a single scheduler step and never suspend mid-block.        *)
(* ------------------------------------------------------------------ *)

type cexpr =
  | C_const of Value.tagged
  | C_var of int
  | C_load of int * cexpr
  | C_load_scalar of int
  | C_arr_len of int
  | C_binop of binop * cexpr * cexpr
  | C_unop of unop * cexpr

(* Call targets resolve at compile time; a bad one (unknown function,
   arity mismatch) still crashes at execution time, after argument
   evaluation, exactly as the AST walker does. *)
type callee = Callee of int | Callee_bad of string

type catomic = { a_sid : int; a_op : aop }

and aop =
  | A_skip
  | A_assign of int * cexpr
  | A_store of int * cexpr * cexpr
  | A_store_scalar of int * cexpr
  | A_if of cexpr * catomic array * catomic array
  | A_while of cexpr * catomic array
  | A_input of int * string * Value.t list * Taint.t
  | A_output of string * cexpr
  | A_send of int * cexpr
  | A_recv of int * int
  | A_try_recv of int * int * int
  | A_lock of int
  | A_unlock of int
  | A_assert of cexpr * string
  | A_crash of string
  | A_atomic of catomic array

type op =
  | O_skip
  | O_assign of int * cexpr
  | O_store of int * cexpr * cexpr
  | O_store_scalar of int * cexpr
  | O_br of cexpr * int  (* If: false jumps to target, true falls through *)
  | O_while of cexpr * int  (* false jumps past the loop, true falls through *)
  | O_jmp of int  (* silent control transfer: never a step, never an event *)
  | O_input of int * string * Value.t list * Taint.t
  | O_output of string * cexpr
  | O_send of int * cexpr  (* message channels and locks are interned: *)
  | O_recv of int * int  (* their names appear only as statement      *)
  | O_try_recv of int * int * int  (* literals, so every queue/owner lookup  *)
  | O_lock of int  (* is an array index instead of a string hash      *)
  | O_unlock of int
  | O_spawn of callee * string * cexpr array
  | O_call of int * callee * cexpr array  (* dest slot in caller, or -1 *)
  | O_return of cexpr
  | O_assert of cexpr * string
  | O_fail of string
  | O_atomic of catomic array

type instr = { i_sid : int; i_op : op }

type cfunc = {
  cf_name : string;
  cf_nslots : int;
  cf_slot_names : string array;
  mutable cf_code : instr array;
}

type compiled = {
  c_funcs : cfunc array;
  c_main : callee;
  c_scalar_names : string array;
  c_scalar_init : Value.tagged array;
  c_array_names : string array;
  c_array_init : Value.tagged array;
  c_array_len : int array;
  c_chan_names : string array;  (* interned Send/Recv/Try_recv channels *)
  c_lock_names : string array;  (* interned mutex names *)
}

let compile (labeled : Label.labeled) : compiled =
  let prog = labeled.Label.prog in
  (* Regions: last declaration of a name wins, as in [Memory.create]. *)
  let sc_ids = Hashtbl.create 16 and ar_ids = Hashtbl.create 16 in
  let sc = Vec.create () and ar = Vec.create () in
  List.iter
    (function
      | Scalar_decl (r, v) -> (
        let init = Value.untainted v in
        match Hashtbl.find_opt sc_ids r with
        | Some i -> (Vec.get sc i) := init
        | None ->
          Hashtbl.replace sc_ids r (Vec.length sc);
          Vec.push sc (ref init))
      | Array_decl (r, n, v) -> (
        let init = Value.untainted v in
        match Hashtbl.find_opt ar_ids r with
        | Some i -> (Vec.get ar i) := (n, init)
        | None ->
          Hashtbl.replace ar_ids r (Vec.length ar);
          Vec.push ar (ref (n, init))))
    prog.regions;
  let scalar_id r =
    match Hashtbl.find_opt sc_ids r with
    | Some i -> i
    | None -> invalid_arg ("Interp.compile: undeclared scalar region " ^ r)
  in
  let array_id r =
    match Hashtbl.find_opt ar_ids r with
    | Some i -> i
    | None -> invalid_arg ("Interp.compile: undeclared array region " ^ r)
  in
  let inv_names ids n =
    let a = Array.make n "" in
    Hashtbl.iter (fun r i -> a.(i) <- r) ids;
    a
  in
  (* Message channels and mutexes: every name is a statement literal, so
     the whole name space is known at compile time and can be interned.
     The AST walker creates queues on first use; pre-creating one per
     interned name is indistinguishable, because an untouched queue only
     ever answers [is_empty] with [true]. *)
  let ch_ids = Hashtbl.create 16 and lk_ids = Hashtbl.create 16 in
  let intern ids r =
    match Hashtbl.find_opt ids r with
    | Some i -> i
    | None ->
      let i = Hashtbl.length ids in
      Hashtbl.replace ids r i;
      i
  in
  let chan_id ch = intern ch_ids ch in
  let lock_id m = intern lk_ids m in
  (* Functions: first declaration of a name wins, as in [find_func]. *)
  let fn_ids = Hashtbl.create 16 in
  let fn_arr = Array.of_list prog.funcs in
  Array.iteri
    (fun i (f : func) ->
      if not (Hashtbl.mem fn_ids f.fname) then Hashtbl.replace fn_ids f.fname i)
    fn_arr;
  let resolve_callee fn nargs =
    match Hashtbl.find_opt fn_ids fn with
    | None -> Callee_bad ("undefined function " ^ fn)
    | Some i ->
      let np = List.length fn_arr.(i).params in
      if np <> nargs then
        Callee_bad
          (Printf.sprintf "%s expects %d arguments, got %d" fn np nargs)
      else Callee i
  in
  let cfuncs =
    Array.map
      (fun (f : func) ->
        {
          cf_name = f.fname;
          cf_nslots = 0;
          cf_slot_names = [||];
          cf_code = [||];
        })
      fn_arr
  in
  let compile_func fi (f : func) =
    let slots = Hashtbl.create 16 in
    let names = Vec.create () in
    let slot x =
      match Hashtbl.find_opt slots x with
      | Some i -> i
      | None ->
        let i = Vec.length names in
        Hashtbl.replace slots x i;
        Vec.push names x;
        i
    in
    List.iter (fun p -> ignore (slot p)) f.params;
    let rec cexpr = function
      | Const v -> C_const (Value.untainted v)
      | Var x -> C_var (slot x)
      | Load (r, e) -> C_load (array_id r, cexpr e)
      | Load_scalar r -> C_load_scalar (scalar_id r)
      | Arr_len r -> C_arr_len (array_id r)
      | Binop (op, a, b) ->
        let ca = cexpr a in
        let cb = cexpr b in
        C_binop (op, ca, cb)
      | Unop (op, a) -> C_unop (op, cexpr a)
    in
    let input_parts ch =
      let domain = Option.value ~default:[] (domain_of prog ch) in
      (ch, domain, Taint.singleton ch)
    in
    (* Atomic bodies stay a tree: they run inside one scheduler step. *)
    let rec catomic_of (s : stmt) =
      let a_op =
        match s.node with
        | Skip | Yield -> A_skip
        | Assign (x, e) -> A_assign (slot x, cexpr e)
        | Store (r, ie, e) ->
          let rid = array_id r in
          let ci = cexpr ie in
          A_store (rid, ci, cexpr e)
        | Store_scalar (r, e) -> A_store_scalar (scalar_id r, cexpr e)
        | If (c, b1, b2) ->
          let cc = cexpr c in
          let cb1 = ablock b1 in
          A_if (cc, cb1, ablock b2)
        | While (c, b) ->
          let cc = cexpr c in
          A_while (cc, ablock b)
        | Input (x, ch) ->
          let xs = slot x in
          let ch, domain, taint = input_parts ch in
          A_input (xs, ch, domain, taint)
        | Output (ch, e) -> A_output (ch, cexpr e)
        | Send (ch, e) -> A_send (chan_id ch, cexpr e)
        | Recv (x, ch) -> A_recv (slot x, chan_id ch)
        | Try_recv (ok, x, ch) ->
          let oks = slot ok in
          A_try_recv (oks, slot x, chan_id ch)
        | Lock m -> A_lock (lock_id m)
        | Unlock m -> A_unlock (lock_id m)
        | Spawn _ -> A_crash "spawn inside atomic"
        | Call _ -> A_crash "call inside atomic"
        | Return _ -> A_crash "return inside atomic"
        | Assert (e, msg) -> A_assert (cexpr e, msg)
        | Fail msg -> A_crash msg
        | Atomic b -> A_atomic (ablock b)
      in
      { a_sid = s.sid; a_op }
    and ablock b = Array.of_list (List.map catomic_of b) in
    let rec stmt_size (s : stmt) =
      match s.node with
      | If (_, b1, b2) -> 2 + block_size b1 + block_size b2
      | While (_, b) -> 2 + block_size b
      | Skip | Assign _ | Store _ | Store_scalar _ | Input _ | Output _
      | Send _ | Recv _ | Try_recv _ | Lock _ | Unlock _ | Spawn _ | Call _
      | Return _ | Assert _ | Fail _ | Yield | Atomic _ ->
        1
    and block_size b = List.fold_left (fun n s -> n + stmt_size s) 0 b in
    let n = block_size f.body in
    let code = Array.make (max n 1) { i_sid = 0; i_op = O_skip } in
    let pos = ref 0 in
    let push sid op =
      code.(!pos) <- { i_sid = sid; i_op = op };
      incr pos
    in
    let rec cstmt (s : stmt) =
      let sid = s.sid in
      match s.node with
      | Skip | Yield -> push sid O_skip
      | Assign (x, e) ->
        let xs = slot x in
        push sid (O_assign (xs, cexpr e))
      | Store (r, ie, e) ->
        let rid = array_id r in
        let ci = cexpr ie in
        push sid (O_store (rid, ci, cexpr e))
      | Store_scalar (r, e) -> push sid (O_store_scalar (scalar_id r, cexpr e))
      | If (c, b1, b2) ->
        let cc = cexpr c in
        let p = !pos in
        incr pos;
        cblock b1;
        let q = !pos in
        incr pos;
        let elsep = !pos in
        cblock b2;
        let endp = !pos in
        code.(p) <- { i_sid = sid; i_op = O_br (cc, elsep) };
        code.(q) <- { i_sid = sid; i_op = O_jmp endp }
      | While (c, b) ->
        let cc = cexpr c in
        let p = !pos in
        incr pos;
        cblock b;
        let q = !pos in
        incr pos;
        let exitp = !pos in
        code.(p) <- { i_sid = sid; i_op = O_while (cc, exitp) };
        code.(q) <- { i_sid = sid; i_op = O_jmp p }
      | Input (x, ch) ->
        let xs = slot x in
        let ch, domain, taint = input_parts ch in
        push sid (O_input (xs, ch, domain, taint))
      | Output (ch, e) -> push sid (O_output (ch, cexpr e))
      | Send (ch, e) -> push sid (O_send (chan_id ch, cexpr e))
      | Recv (x, ch) -> push sid (O_recv (slot x, chan_id ch))
      | Try_recv (ok, x, ch) ->
        let oks = slot ok in
        push sid (O_try_recv (oks, slot x, chan_id ch))
      | Lock m -> push sid (O_lock (lock_id m))
      | Unlock m -> push sid (O_unlock (lock_id m))
      | Spawn (fn, args) ->
        let cargs = Array.of_list (List.map cexpr args) in
        push sid (O_spawn (resolve_callee fn (Array.length cargs), fn, cargs))
      | Call (dest, fn, args) ->
        let d = match dest with None -> -1 | Some x -> slot x in
        let cargs = Array.of_list (List.map cexpr args) in
        push sid (O_call (d, resolve_callee fn (Array.length cargs), cargs))
      | Return e -> push sid (O_return (cexpr e))
      | Assert (e, msg) -> push sid (O_assert (cexpr e, msg))
      | Fail msg -> push sid (O_fail msg)
      | Atomic b -> push sid (O_atomic (ablock b))
    and cblock b = List.iter cstmt b in
    cblock f.body;
    let cf = cfuncs.(fi) in
    cf.cf_code <- Array.sub code 0 n;
    {
      cf with
      cf_nslots = Vec.length names;
      cf_slot_names = Array.of_list (Vec.to_list names);
    }
  in
  Array.iteri (fun i f -> cfuncs.(i) <- compile_func i f) fn_arr;
  {
    c_funcs = cfuncs;
    c_main = resolve_callee prog.main 0;
    c_scalar_names = inv_names sc_ids (Vec.length sc);
    c_scalar_init =
      Array.init (Vec.length sc) (fun i -> !(Vec.get sc i));
    c_array_names = inv_names ar_ids (Vec.length ar);
    c_array_init =
      Array.init (Vec.length ar) (fun i -> snd !(Vec.get ar i));
    c_array_len = Array.init (Vec.length ar) (fun i -> fst !(Vec.get ar i));
    c_chan_names = inv_names ch_ids (Hashtbl.length ch_ids);
    c_lock_names = inv_names lk_ids (Hashtbl.length lk_ids);
  }

(* Reads of a slot still holding this sentinel reproduce the AST walker's
   "unbound variable" crash; physical equality keeps the check off every
   other value. *)
let unbound : Value.tagged = { Value.v = Value.unit; taint = Taint.empty }

(* "No next instruction" sentinel, compared physically: returning it
   instead of [None] keeps the per-step resolve/normalize path from
   allocating an option. Real [O_jmp] instructions are consumed inside
   [resolve_frame], so the sentinel can never be confused with one. *)
let no_instr : instr = { i_sid = -1; i_op = O_jmp (-1) }

type cframe = {
  c_fn : cfunc;
  c_locals : Value.tagged array;
  mutable c_pc : int;
  c_dest : int;  (* slot in the caller's frame, or -1 *)
}

type cthread = { c_tid : int; mutable c_frames : cframe list }

(* The arena: every piece of exec state whose shape depends only on the
   compiled program, reusable across runs on the same domain. The trace is
   deliberately NOT part of it — accepted results retain their traces
   beyond the run that produced them. *)
type state = {
  s_c : compiled;
  s_scalars : Value.tagged array;
  s_arrays : Value.tagged array array;
  s_chans : Value.tagged Queue.t array;  (* indexed by interned chan id *)
  s_locks : int array;  (* owner tid by interned lock id; -1 = free *)
  s_threads : cthread Vec.t;
}

let make_state c =
  {
    s_c = c;
    s_scalars = Array.copy c.c_scalar_init;
    s_arrays =
      Array.init (Array.length c.c_array_len) (fun i ->
          Array.make c.c_array_len.(i) c.c_array_init.(i));
    s_chans =
      Array.init (Array.length c.c_chan_names) (fun _ -> Queue.create ());
    s_locks = Array.make (max 1 (Array.length c.c_lock_names)) (-1);
    s_threads = Vec.create ();
  }

let reset_state st =
  let c = st.s_c in
  Array.blit c.c_scalar_init 0 st.s_scalars 0 (Array.length st.s_scalars);
  Array.iteri
    (fun i a -> Array.fill a 0 (Array.length a) c.c_array_init.(i))
    st.s_arrays;
  Array.iter Queue.clear st.s_chans;
  Array.fill st.s_locks 0 (Array.length st.s_locks) (-1);
  Vec.clear st.s_threads

let run_compiled ?(max_steps = 200_000) ?(monitors = []) ?abort ?cancel
    ?trace_capacity ?state (c : compiled) (world : World.t) =
  let st =
    match state with
    | None -> make_state c
    | Some s ->
      if s.s_c != c then
        invalid_arg "Interp.run_compiled: state built for a different program";
      reset_state s;
      s
  in
  let scalars = st.s_scalars in
  let arrays = st.s_arrays in
  let chans = st.s_chans in
  let locks = st.s_locks in
  let threads = st.s_threads in
  let trace = Trace.create ?capacity:trace_capacity () in
  let step_count = ref 0 in

  let rec notify e = function
    | [] -> ()
    | m :: ms ->
      m e;
      notify e ms
  in
  let emit ~tid ~sid ~fname kind =
    let e = { Event.step = !step_count; tid; sid; fname; kind } in
    Trace.append trace e;
    notify e monitors;
    match abort with
    | None -> ()
    | Some check -> (
      match check e with None -> () | Some reason -> raise (Abort_exn reason))
  in

  let make_cframe cf argv c_dest =
    let c_locals = Array.make (max cf.cf_nslots 1) unbound in
    Array.blit argv 0 c_locals 0 (Array.length argv);
    { c_fn = cf; c_locals; c_pc = 0; c_dest }
  in

  let spawn_cthread callee argv =
    match callee with
    | Callee_bad msg -> raise (Crash_exn msg)
    | Callee i ->
      let tid = Vec.length threads in
      Vec.push threads
        { c_tid = tid; c_frames = [ make_cframe c.c_funcs.(i) argv (-1) ] };
      tid
  in

  ignore (spawn_cthread c.c_main [||]);

  (* Silent jumps carry no step: resolve them before anything looks at a
     frame's next instruction. Returns [no_instr] (physically) when the
     frame is exhausted. *)
  let rec resolve_frame f =
    if f.c_pc >= Array.length f.c_fn.cf_code then no_instr
    else
      (* indices below are compiler-generated (slots, region/chan/lock
         ids, range-checked pc), so the unchecked accesses cannot fault *)
      match Array.unsafe_get f.c_fn.cf_code f.c_pc with
      | { i_op = O_jmp t; _ } ->
        f.c_pc <- t;
        resolve_frame f
      | i -> i
  in
  let rec normalize th =
    match th.c_frames with
    | [] -> ()
    | f :: callers ->
      if resolve_frame f == no_instr then begin
        th.c_frames <- callers;
        (match callers with
        | caller :: _ when f.c_dest >= 0 ->
          caller.c_locals.(f.c_dest) <- Value.untainted Value.unit
        | _ -> ());
        normalize th
      end
  in
  let next_instr th =
    normalize th;
    match th.c_frames with [] -> no_instr | f :: _ -> resolve_frame f
  in

  let use_cache = world.World.passive_try_recv in

  (* Under a passive world [on_try_recv] is the constant [Default], so
     the candidacy probe of a blocked receive never calls it: the hook
     call is skipped without changing a single observable answer. The
     non-passive variant keeps the exact AST-walker call sequence. *)
  let executable tid (i : instr) =
    match i.i_op with
    | O_recv (_, ch) ->
      (not (Queue.is_empty (Array.unsafe_get chans ch)))
      || ((not use_cache)
         &&
         match
           world.World.on_try_recv ~step:!step_count ~tid ~sid:i.i_sid
             ~chan:c.c_chan_names.(ch)
         with
         | World.Force_value _ -> true
         | World.Force_fail | World.Default -> false)
    | O_lock m ->
      let o = Array.unsafe_get locks m in
      o < 0 || o = tid
    | _ -> true
  in

  let rebuild_candidates () =
    let rec build k acc =
      if k < 0 then acc
      else
        let th = Vec.get threads k in
        let i = next_instr th in
        if i != no_instr && executable th.c_tid i then
          build (k - 1)
            ({
               World.tid = th.c_tid;
               sid = i.i_sid;
               fname = (List.hd th.c_frames).c_fn.cf_name;
             }
            :: acc)
        else build (k - 1) acc
    in
    build (Vec.length threads - 1) []
  in

  let cand_cache : World.cand list ref = ref [] in
  let cache_valid = ref false in
  let candidates () =
    if not use_cache then rebuild_candidates ()
    else if !cache_valid then !cand_cache
    else begin
      let cs = rebuild_candidates () in
      cand_cache := cs;
      cache_valid := true;
      cs
    end
  in

  (* Same locality classification as the AST walker's [local_node]. *)
  let local_op = function
    | O_skip | O_assign _ | O_store _ | O_store_scalar _ | O_br _ | O_while _
    | O_input _ | O_output _ | O_assert _ | O_call _ | O_return _ ->
      true
    | O_send _ | O_recv _ | O_try_recv _ | O_lock _ | O_unlock _ | O_spawn _
    | O_atomic _ | O_fail _ | O_jmp _ ->
      false
  in

  (* Closure-free replace/remove keep the cache patch allocation-light:
     a tid occurs at most once, so the untouched suffix is shared instead
     of re-consed. The produced list is structurally identical to the AST
     walker's List.map / List.filter result. *)
  let rec replace_cand tid cnd = function
    | [] -> []
    | (c0 : World.cand) :: rest ->
      if c0.World.tid = tid then cnd :: rest
      else c0 :: replace_cand tid cnd rest
  in
  let rec remove_cand tid = function
    | [] -> []
    | (c0 : World.cand) :: rest ->
      if c0.World.tid = tid then rest else c0 :: remove_cand tid rest
  in
  let patch_candidate th =
    let i = next_instr th in
    if i != no_instr && executable th.c_tid i then
      let cnd =
        {
          World.tid = th.c_tid;
          sid = i.i_sid;
          fname = (List.hd th.c_frames).c_fn.cf_name;
        }
      in
      cand_cache := replace_cand th.c_tid cnd !cand_cache
    else cand_cache := remove_cand th.c_tid !cand_cache
  in

  (* Array indices are consumed as bare ints: the [tagged] record that
     [binop_apply] allocates for index arithmetic (and the boxed length
     of [C_arr_len]) is dead weight on every table access. The fast
     cases compute the int from already-evaluated operands — same
     operand order, same crash and type errors via the fallback — so
     traces stay byte-identical to the AST walker's. *)
  let binop_int op (va : Value.tagged) (vb : Value.tagged) =
    match (op, va.Value.v, vb.Value.v) with
    | Add, Value.Vint x, Value.Vint y -> x + y
    | Sub, Value.Vint x, Value.Vint y -> x - y
    | Mul, Value.Vint x, Value.Vint y -> x * y
    | Min, Value.Vint x, Value.Vint y -> min x y
    | Max, Value.Vint x, Value.Vint y -> max x y
    | Div, Value.Vint x, Value.Vint y when y <> 0 -> x / y
    | Mod, Value.Vint x, Value.Vint y when y <> 0 -> x mod y
    | _ -> Value.as_int (binop_apply op va vb).Value.v
  in
  let rec ceval th (f : cframe) ~sid e =
    match e with
    | C_const v -> v
    | C_var slot ->
      let v = Array.unsafe_get f.c_locals slot in
      if v == unbound then
        raise (Crash_exn ("unbound variable " ^ f.c_fn.cf_slot_names.(slot)))
      else v
    | C_load_scalar rid ->
      let r = Array.unsafe_get c.c_scalar_names rid in
      let actual = Array.unsafe_get scalars rid in
      let v =
        world.World.on_read ~step:!step_count ~tid:th.c_tid ~sid ~region:r
          ~index:None ~actual
      in
      emit ~tid:th.c_tid ~sid ~fname:f.c_fn.cf_name
        (Event.Read { region = r; index = None; value = v });
      v
    | C_load (rid, ie) ->
      let i = ceval_int th f ~sid ie in
      let a = arrays.(rid) in
      if i < 0 || i >= Array.length a then
        raise
          (Crash_exn
             (Printf.sprintf "array %s index %d out of bounds (length %d)"
                c.c_array_names.(rid) i (Array.length a)))
      else begin
        let actual = Array.unsafe_get a i in
        let r = c.c_array_names.(rid) in
        let idx = Some i in
        let v =
          world.World.on_read ~step:!step_count ~tid:th.c_tid ~sid ~region:r
            ~index:idx ~actual
        in
        emit ~tid:th.c_tid ~sid ~fname:f.c_fn.cf_name
          (Event.Read { region = r; index = idx; value = v });
        v
      end
    | C_arr_len rid ->
      Value.untainted (Value.int (Array.length arrays.(rid)))
    | C_binop (op, a, b) ->
      let va = ceval th f ~sid a in
      let vb = ceval th f ~sid b in
      binop_apply op va vb
    | C_unop (op, a) -> unop_apply op (ceval th f ~sid a)

  and ceval_int th f ~sid e =
    match e with
    | C_binop (op, a, b) ->
      let va = ceval th f ~sid a in
      let vb = ceval th f ~sid b in
      binop_int op va vb
    | C_arr_len rid -> Array.length arrays.(rid)
    | _ -> Value.as_int (ceval th f ~sid e).Value.v
  in

  (* Branch conditions are evaluated for their truth value only, so the
     result [tagged] record and taint union of [binop_apply] are dead
     weight on every loop iteration. The fast cases below read the truth
     directly when both operands already have the right shape; anything
     else falls back to [binop_apply]/[unop_apply], which raise the exact
     AST-walker [Type_error]s. Operand evaluation order is unchanged. *)
  let cond_true th f ~sid cc =
    match cc with
    | C_binop (op, a, b) -> (
      let va = ceval th f ~sid a in
      let vb = ceval th f ~sid b in
      match (op, va.Value.v, vb.Value.v) with
      | Lt, Value.Vint x, Value.Vint y -> x < y
      | Le, Value.Vint x, Value.Vint y -> x <= y
      | Gt, Value.Vint x, Value.Vint y -> x > y
      | Ge, Value.Vint x, Value.Vint y -> x >= y
      | Eq, x, y -> Value.equal x y
      | Ne, x, y -> not (Value.equal x y)
      | And, Value.Vbool x, Value.Vbool y -> x && y
      | Or, Value.Vbool x, Value.Vbool y -> x || y
      | _ -> Value.as_bool (binop_apply op va vb).Value.v)
    | C_unop (Not, a) -> (
      let va = ceval th f ~sid a in
      match va.Value.v with
      | Value.Vbool x -> not x
      | _ -> Value.as_bool (unop_apply Not va).Value.v)
    | cc -> Value.as_bool (ceval th f ~sid cc).Value.v
  in

  let eval_args th f ~sid (args : cexpr array) =
    let n = Array.length args in
    if n = 0 then [||]
    else begin
      let out = Array.make n unbound in
      for i = 0 to n - 1 do
        out.(i) <- ceval th f ~sid args.(i)
      done;
      out
    end
  in

  (* Shared statement bodies (used both as top-level steps and inside
     atomic blocks), mirroring [exec_node] case by case. *)
  let do_store th f ~sid rid ci ce =
    let i = ceval_int th f ~sid ci in
    let v = ceval th f ~sid ce in
    let a = arrays.(rid) in
    if i < 0 || i >= Array.length a then
      raise
        (Crash_exn
           (Printf.sprintf "array %s index %d out of bounds (length %d)"
              c.c_array_names.(rid) i (Array.length a)))
    else begin
      a.(i) <- v;
      emit ~tid:th.c_tid ~sid ~fname:f.c_fn.cf_name (Event.Write { region = c.c_array_names.(rid); index = Some i; value = v })
    end
  in
  let do_store_scalar th f ~sid rid ce =
    let v = ceval th f ~sid ce in
    scalars.(rid) <- v;
    emit ~tid:th.c_tid ~sid ~fname:f.c_fn.cf_name (Event.Write { region = c.c_scalar_names.(rid); index = None; value = v })
  in
  let do_input th (f : cframe) ~sid xs ch domain taint =
    let v0 =
      world.World.pick_input ~step:!step_count ~tid:th.c_tid ~chan:ch ~domain
    in
    let v = Value.tag v0 taint in
    f.c_locals.(xs) <- v;
    emit ~tid:th.c_tid ~sid ~fname:f.c_fn.cf_name (Event.In { chan = ch; value = v })
  in
  let do_send th f ~sid ch ce =
    let v = ceval th f ~sid ce in
    Queue.push v chans.(ch);
    emit ~tid:th.c_tid ~sid ~fname:f.c_fn.cf_name (Event.Msg_send { chan = c.c_chan_names.(ch); value = v })
  in
  let do_recv th (f : cframe) ~sid xs ch =
    let chan = c.c_chan_names.(ch) in
    let q = chans.(ch) in
    if not (Queue.is_empty q) then begin
      let actual = Queue.pop q in
      let v =
        world.World.on_recv ~step:!step_count ~tid:th.c_tid ~sid ~chan ~actual
      in
      f.c_locals.(xs) <- v;
      emit ~tid:th.c_tid ~sid ~fname:f.c_fn.cf_name (Event.Msg_recv { chan; value = v })
    end
    else
      match
        world.World.on_try_recv ~step:!step_count ~tid:th.c_tid ~sid ~chan
      with
      | World.Force_value forced ->
        let v =
          world.World.on_recv ~step:!step_count ~tid:th.c_tid ~sid ~chan
            ~actual:forced
        in
        f.c_locals.(xs) <- v;
        emit ~tid:th.c_tid ~sid ~fname:f.c_fn.cf_name (Event.Msg_recv { chan; value = v })
      | World.Force_fail | World.Default ->
        raise (Crash_exn ("recv on empty channel " ^ chan ^ " inside atomic"))
  in
  let do_try_recv th (f : cframe) ~sid oks xs ch =
    let chan = c.c_chan_names.(ch) in
    let q = chans.(ch) in
    let succeed v =
      f.c_locals.(oks) <- Value.untainted (Value.bool true);
      f.c_locals.(xs) <- v;
      emit ~tid:th.c_tid ~sid ~fname:f.c_fn.cf_name (Event.Msg_recv { chan; value = v })
    in
    let miss () =
      f.c_locals.(oks) <- Value.untainted (Value.bool false);
      f.c_locals.(xs) <- Value.untainted Value.unit
    in
    match
      world.World.on_try_recv ~step:!step_count ~tid:th.c_tid ~sid ~chan
    with
    | World.Force_fail -> miss ()
    | World.Force_value forced ->
      if not (Queue.is_empty q) then ignore (Queue.pop q);
      succeed
        (world.World.on_recv ~step:!step_count ~tid:th.c_tid ~sid ~chan
           ~actual:forced)
    | World.Default ->
      if Queue.is_empty q then miss ()
      else
        succeed
          (world.World.on_recv ~step:!step_count ~tid:th.c_tid ~sid ~chan
             ~actual:(Queue.pop q))
  in
  let do_lock th (f : cframe) ~sid m =
    let o = locks.(m) in
    if o = th.c_tid then
      raise (Crash_exn ("relock of mutex " ^ c.c_lock_names.(m)))
    else if o >= 0 then
      raise
        (Crash_exn ("lock contention on " ^ c.c_lock_names.(m) ^ " inside atomic"))
    else begin
      locks.(m) <- th.c_tid;
      emit ~tid:th.c_tid ~sid ~fname:f.c_fn.cf_name (Event.Lock_acq c.c_lock_names.(m))
    end
  in
  let do_unlock th (f : cframe) ~sid m =
    if locks.(m) = th.c_tid then begin
      locks.(m) <- -1;
      emit ~tid:th.c_tid ~sid ~fname:f.c_fn.cf_name (Event.Lock_rel c.c_lock_names.(m))
    end
    else raise (Crash_exn ("unlock of mutex " ^ c.c_lock_names.(m) ^ " not held"))
  in

  let rec a_exec th (f : cframe) budget (s : catomic) =
    decr budget;
    if !budget <= 0 then raise (Crash_exn "atomic budget exhausted");
    let sid = s.a_sid in
    match s.a_op with
    | A_skip -> ()
    | A_assign (xs, e) -> Array.unsafe_set f.c_locals xs (ceval th f ~sid e)
    | A_store (rid, ci, ce) -> do_store th f ~sid rid ci ce
    | A_store_scalar (rid, ce) -> do_store_scalar th f ~sid rid ce
    | A_if (cc, b1, b2) ->
      let cond = cond_true th f ~sid cc in
      a_block th f budget (if cond then b1 else b2)
    | A_while (cc, body) ->
      if cond_true th f ~sid cc then begin
        a_block th f budget body;
        a_exec th f budget s
      end
    | A_input (xs, ch, domain, taint) -> do_input th f ~sid xs ch domain taint
    | A_output (ch, ce) ->
      let v = ceval th f ~sid ce in
      emit ~tid:th.c_tid ~sid ~fname:f.c_fn.cf_name (Event.Out { chan = ch; value = v })
    | A_send (ch, ce) -> do_send th f ~sid ch ce
    | A_recv (xs, ch) -> do_recv th f ~sid xs ch
    | A_try_recv (oks, xs, ch) -> do_try_recv th f ~sid oks xs ch
    | A_lock m -> do_lock th f ~sid m
    | A_unlock m -> do_unlock th f ~sid m
    | A_assert (ce, msg) ->
      if not (cond_true th f ~sid ce) then
        raise (Crash_exn ("assertion failed: " ^ msg))
    | A_crash msg -> raise (Crash_exn msg)
    | A_atomic body -> a_block th f budget body
  and a_block th f budget body = Array.iter (a_exec th f budget) body in

  let exec_op th (f : cframe) (i : instr) =
    let sid = i.i_sid in
    match i.i_op with
    | O_skip -> ()
    | O_assign (xs, e) -> Array.unsafe_set f.c_locals xs (ceval th f ~sid e)
    | O_store (rid, ci, ce) -> do_store th f ~sid rid ci ce
    | O_store_scalar (rid, ce) -> do_store_scalar th f ~sid rid ce
    | O_br (cc, elsep) ->
      if not (cond_true th f ~sid cc) then f.c_pc <- elsep
    | O_while (cc, exitp) ->
      if not (cond_true th f ~sid cc) then f.c_pc <- exitp
    | O_jmp _ -> assert false (* resolved before dispatch *)
    | O_input (xs, ch, domain, taint) -> do_input th f ~sid xs ch domain taint
    | O_output (ch, ce) ->
      let v = ceval th f ~sid ce in
      emit ~tid:th.c_tid ~sid ~fname:f.c_fn.cf_name (Event.Out { chan = ch; value = v })
    | O_send (ch, ce) -> do_send th f ~sid ch ce
    | O_recv (xs, ch) -> do_recv th f ~sid xs ch
    | O_try_recv (oks, xs, ch) -> do_try_recv th f ~sid oks xs ch
    | O_lock m -> do_lock th f ~sid m
    | O_unlock m -> do_unlock th f ~sid m
    | O_spawn (callee, fn, args) ->
      let argv = eval_args th f ~sid args in
      let child = spawn_cthread callee argv in
      emit ~tid:th.c_tid ~sid ~fname:f.c_fn.cf_name (Event.Spawned { child; fname = fn })
    | O_call (dest, callee, args) -> (
      let argv = eval_args th f ~sid args in
      match callee with
      | Callee_bad msg -> raise (Crash_exn msg)
      | Callee fi ->
        th.c_frames <- make_cframe c.c_funcs.(fi) argv dest :: th.c_frames)
    | O_return e -> (
      let v = ceval th f ~sid e in
      match th.c_frames with
      | fr :: callers ->
        th.c_frames <- callers;
        (match callers with
        | caller :: _ when fr.c_dest >= 0 -> caller.c_locals.(fr.c_dest) <- v
        | _ -> ())
      | [] -> raise (Crash_exn "return without frame"))
    | O_assert (ce, msg) ->
      if not (cond_true th f ~sid ce) then
        raise (Crash_exn ("assertion failed: " ^ msg))
    | O_fail msg -> raise (Crash_exn msg)
    | O_atomic body ->
      let budget = ref atomic_budget in
      a_block th f budget body
  in

  let exec_step th =
    let i = next_instr th in
    if i == no_instr then assert false
    else begin
      let f = List.hd th.c_frames in
      emit ~tid:th.c_tid ~sid:i.i_sid ~fname:f.c_fn.cf_name Event.Step;
      f.c_pc <- f.c_pc + 1;
      (try exec_op th f i with
      | Crash_exn msg ->
        emit ~tid:th.c_tid ~sid:i.i_sid ~fname:f.c_fn.cf_name
          (Event.Crashed msg);
        raise (Crash_at (i.i_sid, msg))
      | Value.Type_error msg ->
        emit ~tid:th.c_tid ~sid:i.i_sid ~fname:f.c_fn.cf_name
          (Event.Crashed msg);
        raise (Crash_at (i.i_sid, msg)));
      if use_cache && !cache_valid then
        if local_op i.i_op then patch_candidate th else cache_valid := false
    end
  in

  let finish status =
    let failure =
      match status with
      | Crashed f -> Some f
      | Deadlock | Step_limit -> Some Failure.Hang
      | Done | Aborted _ -> None
    in
    { status; trace; steps = !step_count; outputs = Trace.outputs trace; failure }
  in

  let cancelled () =
    match cancel with
    | Some check when !step_count land 127 = 0 -> check ()
    | _ -> None
  in
  let rec mem_tid tid = function
    | [] -> false
    | (cd : World.cand) :: rest -> cd.World.tid = tid || mem_tid tid rest
  in
  let rec loop () =
    if !step_count >= max_steps then finish Step_limit
    else
      match cancelled () with
      | Some reason -> finish (Aborted reason)
      | None -> (
        match candidates () with
        | [] ->
          let alive = Vec.exists (fun th -> th.c_frames <> []) threads in
          if alive then finish Deadlock else finish Done
        | cands -> (
          let tid = world.World.pick_thread ~step:!step_count cands in
          match Vec.get threads tid with
          | exception Invalid_argument _ ->
            invalid_arg "Interp: world picked an unknown thread"
          | th ->
            if not (mem_tid tid cands) then
              invalid_arg "Interp: world picked a non-candidate thread";
            exec_step th;
            incr step_count;
            loop ()))
  in
  try loop () with
  | Crash_at (sid, msg) -> finish (Crashed (Failure.Crash { sid; msg }))
  | Abort_exn reason -> finish (Aborted reason)
