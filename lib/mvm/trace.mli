(** Execution traces: the append-only event sequence of one run, plus the
    queries recorders, analyses and root-cause predicates need. *)

type t

(** [create ()] is an empty trace. [capacity] presizes the backing store —
    search engines re-executing one program millions of times pass the
    previous run's event count so appends never reallocate. *)
val create : ?capacity:int -> unit -> t

(** [append t e] adds an event (interpreter use). *)
val append : t -> Event.t -> unit

(** [length t] is the number of events. *)
val length : t -> int

(** [events t] is all events in execution order. *)
val events : t -> Event.t list

val iter : (Event.t -> unit) -> t -> unit
val fold : ('acc -> Event.t -> 'acc) -> 'acc -> t -> 'acc
val filter : (Event.t -> bool) -> t -> Event.t list
val exists : (Event.t -> bool) -> t -> bool
val count : (Event.t -> bool) -> t -> int

(** [steps t] is the number of scheduler steps (i.e. [Step] events). *)
val steps : t -> int

(** [outputs t] is the per-channel output sequences, channels sorted by
    name, values in emission order. *)
val outputs : t -> (string * Value.t list) list

(** [outputs_on t chan] is the values emitted on [chan], in order. *)
val outputs_on : t -> string -> Value.t list

(** [inputs_on t chan] is [(step, tid, value)] for every input consumed from
    [chan], in order. *)
val inputs_on : t -> string -> (int * int * Value.t) list

(** [reads_by t tid] is the shared-read values of thread [tid] in program
    order — the projection a value-determinism recorder logs. *)
val reads_by : t -> int -> Value.t list

(** [writes_to_scalar t region] is [(step, tid, value)] for every write to
    scalar [region], in order. *)
val writes_to_scalar : t -> string -> (int * int * Value.t) list

(** [scalar_at t region ~init ~step] reconstructs the value of scalar
    [region] as of just before [step], folding writes over [init]. Root
    cause predicates use this to ask questions like "who owned range r when
    this row was committed?". *)
val scalar_at : t -> string -> init:Value.t -> step:int -> Value.t

(** [array_cell_at t region ~index ~init ~step] is the array analogue of
    [scalar_at]. *)
val array_cell_at : t -> string -> index:int -> init:Value.t -> step:int -> Value.t

(** [accesses_to t region] is all read/write events touching [region]. *)
val accesses_to : t -> string -> Event.t list

(** [sched_points t] is the [(tid, sid)] sequence of all scheduler steps —
    a perfect-determinism schedule log. *)
val sched_points : t -> (int * int) list

val pp : Format.formatter -> t -> unit
