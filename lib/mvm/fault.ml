type chan_action =
  | Drop of float
  | Duplicate of float
  | Delay of { from_step : int; until_step : int }

type fault =
  | Chan of { chan : string; action : chan_action }
  | Stall of { tid : int; from_step : int; until_step : int }
  | Crash of { tid : int; at_step : int }
  | Perturb of { chan : string; prob : float }
  (* node-granular faults: sugar over the thread/channel primitives,
     desugared by [lower] against a Node.map before injection *)
  | Partition of { groups : string list list; from_step : int; until_step : int }
  | Node_crash of { node : string; at_step : int }
  | Node_restart of { node : string; from_step : int; until_step : int }

type plan = { seed : int; faults : fault list }

let none = { seed = 0; faults = [] }
let make ?(seed = 0) faults = { seed; faults }
let is_empty plan = plan.faults = []

let drop ?(prob = 0.1) chan = Chan { chan; action = Drop prob }
let duplicate ?(prob = 0.1) chan = Chan { chan; action = Duplicate prob }
let delay ~chan ~from_step ~until_step =
  Chan { chan; action = Delay { from_step; until_step } }
let stall ~tid ~from_step ~until_step = Stall { tid; from_step; until_step }
let crash ~tid ~at_step = Crash { tid; at_step }
let perturb ?(prob = 0.1) chan = Perturb { chan; prob }

let partition ~groups ~from_step ~until_step =
  Partition { groups; from_step; until_step }

let node_crash ~node ~at_step = Node_crash { node; at_step }

let node_restart ~node ~from_step ~until_step =
  Node_restart { node; from_step; until_step }

let is_node_fault = function
  | Partition _ | Node_crash _ | Node_restart _ -> true
  | Chan _ | Stall _ | Crash _ | Perturb _ -> false

let has_node_faults plan = List.exists is_node_fault plan.faults

(* ------------------------------------------------------------------ *)
(* deterministic coins

   Each decision is a pure splitmix64-style hash of the plan seed, a salt
   distinguishing the fault kind, and the decision's coordinates. Purity
   is load-bearing: the scheduler consults on_try_recv once to decide
   whether a blocked Recv is runnable and again to execute it, within the
   same step — a stream-drawing PRNG would desynchronise the two calls. *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let mix_int h x =
  mix64 (Int64.add (Int64.logxor h (Int64.of_int x)) 0x9E3779B97F4A7C15L)

let str_salt s =
  String.fold_left (fun h c -> (h * 31) + Char.code c) (String.length s) s

let coin plan ~salt ~step ~tid ~sid ~chan =
  let h = mix_int (Int64.of_int plan.seed) salt in
  let h = mix_int h step in
  let h = mix_int h tid in
  let h = mix_int h sid in
  let h = mix_int h (str_salt chan) in
  (* top 53 bits as a float in [0, 1) *)
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

let salt_drop = 1
let salt_dup = 2
let salt_perturb = 3
let salt_perturb_ix = 4

(* ------------------------------------------------------------------ *)
(* rendering / parsing *)

let fault_to_string = function
  | Chan { chan; action = Drop p } -> Printf.sprintf "drop:%s:%g" chan p
  | Chan { chan; action = Duplicate p } -> Printf.sprintf "dup:%s:%g" chan p
  | Chan { chan; action = Delay { from_step; until_step } } ->
    Printf.sprintf "delay:%s:%d-%d" chan from_step until_step
  | Stall { tid; from_step; until_step } ->
    Printf.sprintf "stall:%d:%d-%d" tid from_step until_step
  | Crash { tid; at_step } -> Printf.sprintf "crash:%d:%d" tid at_step
  | Perturb { chan; prob } -> Printf.sprintf "perturb:%s:%g" chan prob
  | Partition { groups; from_step; until_step } ->
    Printf.sprintf "partition:%s:%d-%d"
      (String.concat "|" (List.map (String.concat "+") groups))
      from_step until_step
  | Node_crash { node; at_step } -> Printf.sprintf "nodecrash:%s:%d" node at_step
  | Node_restart { node; from_step; until_step } ->
    Printf.sprintf "noderestart:%s:%d-%d" node from_step until_step

let to_string plan =
  String.concat ","
    (Printf.sprintf "seed=%d" plan.seed :: List.map fault_to_string plan.faults)

let pp ppf plan = Format.pp_print_string ppf (to_string plan)

let parse_prob clause s =
  match float_of_string_opt s with
  | Some p when p >= 0. && p <= 1. -> Ok p
  | _ -> Error (Printf.sprintf "bad probability %S in clause %S" s clause)

let parse_int clause s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "bad integer %S in clause %S" s clause)

let parse_range clause s =
  match String.index_opt s '-' with
  | Some k ->
    let a = String.sub s 0 k in
    let b = String.sub s (k + 1) (String.length s - k - 1) in
    Result.bind (parse_int clause a) (fun lo ->
        Result.map (fun hi -> (lo, hi)) (parse_int clause b))
  | None -> Error (Printf.sprintf "bad step range %S in clause %S" s clause)

let parse_clause clause =
  let ( let* ) = Result.bind in
  match String.split_on_char ':' clause with
  | [ "drop"; chan; p ] ->
    let* p = parse_prob clause p in
    Ok (`Fault (Chan { chan; action = Drop p }))
  | [ "dup"; chan; p ] ->
    let* p = parse_prob clause p in
    Ok (`Fault (Chan { chan; action = Duplicate p }))
  | [ "delay"; chan; range ] ->
    let* from_step, until_step = parse_range clause range in
    Ok (`Fault (Chan { chan; action = Delay { from_step; until_step } }))
  | [ "stall"; tid; range ] ->
    let* tid = parse_int clause tid in
    let* from_step, until_step = parse_range clause range in
    Ok (`Fault (Stall { tid; from_step; until_step }))
  | [ "crash"; tid; at ] ->
    let* tid = parse_int clause tid in
    let* at_step = parse_int clause at in
    Ok (`Fault (Crash { tid; at_step }))
  | [ "perturb"; chan; p ] ->
    let* prob = parse_prob clause p in
    Ok (`Fault (Perturb { chan; prob }))
  | [ "partition"; groups; range ] ->
    let groups =
      String.split_on_char '|' groups
      |> List.map (fun g ->
             String.split_on_char '+' g |> List.filter (fun n -> n <> ""))
      |> List.filter (fun g -> g <> [])
    in
    if List.length groups < 2 then
      Error
        (Printf.sprintf
           "partition needs at least two groups (A+B|C) in clause %S" clause)
    else
      let* from_step, until_step = parse_range clause range in
      Ok (`Fault (Partition { groups; from_step; until_step }))
  | [ "nodecrash"; node; at ] ->
    let* at_step = parse_int clause at in
    Ok (`Fault (Node_crash { node; at_step }))
  | [ "noderestart"; node; range ] ->
    let* from_step, until_step = parse_range clause range in
    Ok (`Fault (Node_restart { node; from_step; until_step }))
  | [ kv ] when String.length kv > 5 && String.sub kv 0 5 = "seed=" ->
    let* seed = parse_int clause (String.sub kv 5 (String.length kv - 5)) in
    Ok (`Seed seed)
  | _ -> Error (Printf.sprintf "unrecognised fault clause %S" clause)

let of_string s =
  let clauses =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let rec go seed acc = function
    | [] -> Ok { seed; faults = List.rev acc }
    | clause :: rest -> (
      match parse_clause clause with
      | Ok (`Seed n) -> go n acc rest
      | Ok (`Fault f) -> go seed (f :: acc) rest
      | Error e -> Error e)
  in
  go 0 [] clauses

(* ------------------------------------------------------------------ *)
(* lowering node faults to thread/channel primitives

   Node faults are sugar, not a new mechanism: a partition is a Delay on
   every channel whose users span two groups, a node crash is a Crash of
   every member thread, a node restart a Stall (the node is out for the
   window; its memory survives — process restart with intact state, the
   simplification DESIGN §11 documents). Lowering is a pure function of
   (plan, node map, program), so the *lowered* plan is what ships in the
   log and replay needs no node knowledge at all. *)

let lower ~map ~prog plan =
  let lower_fault = function
    | Partition { groups; from_step; until_step } ->
      List.map
        (fun chan -> Chan { chan; action = Delay { from_step; until_step } })
        (Node.cut_channels map prog ~groups)
    | Node_crash { node; at_step } ->
      List.map (fun tid -> Crash { tid; at_step }) (Node.members map prog node)
    | Node_restart { node; from_step; until_step } ->
      List.map
        (fun tid -> Stall { tid; from_step; until_step })
        (Node.members map prog node)
    | (Chan _ | Stall _ | Crash _ | Perturb _) as f -> [ f ]
  in
  { plan with faults = List.concat_map lower_fault plan.faults }

(* ------------------------------------------------------------------ *)
(* injection *)

let chan_decision plan ~step ~tid ~sid ~chan ~last =
  let rec go = function
    | [] -> World.Default
    | Chan { chan = c; action } :: rest when String.equal c chan -> (
      match action with
      | Drop p when coin plan ~salt:salt_drop ~step ~tid ~sid ~chan < p ->
        World.Force_fail
      | Delay { from_step; until_step }
        when step >= from_step && step < until_step ->
        World.Force_fail
      | Duplicate p when coin plan ~salt:salt_dup ~step ~tid ~sid ~chan < p
        -> (
        match last () with
        | Some v -> World.Force_value v
        | None -> go rest)
      | Drop _ | Duplicate _ | Delay _ -> go rest)
    | _ :: rest -> go rest
  in
  go plan.faults

let descheduled plan ~step tid =
  List.exists
    (function
      | Stall { tid = t; from_step; until_step } ->
        t = tid && step >= from_step && step < until_step
      | Crash { tid = t; at_step } -> t = tid && step >= at_step
      | Chan _ | Perturb _ | Partition _ | Node_crash _ | Node_restart _ ->
        false)
    plan.faults

let perturb_prob plan chan =
  List.fold_left
    (fun acc -> function
      | Perturb { chan = c; prob } when String.equal c chan -> Float.max acc prob
      | _ -> acc)
    0. plan.faults

let inject plan (w : World.t) =
  if has_node_faults plan then
    invalid_arg
      (Printf.sprintf
         "Fault.inject: plan %S contains node-granular faults; lower it \
          against the app's node map first (Fault.lower)"
         (to_string plan));
  if is_empty plan then w
  else
    (* last message delivered per channel, for Duplicate. Mutated only in
       on_recv — which the interpreter calls strictly after every
       on_try_recv consultation of the same step — so on_try_recv stays
       pure within a step. *)
    let last_delivered : (string, Value.tagged) Hashtbl.t = Hashtbl.create 8 in
    {
      w with
      World.name = Printf.sprintf "%s+faults(%s)" w.World.name (to_string plan);
      (* chan_decision hashes the step, so a blocked recv can become
         runnable as time advances: the candidate cache must stay off *)
      passive_try_recv = false;
      pick_thread =
        (fun ~step cands ->
          match
            List.filter
              (fun c -> not (descheduled plan ~step c.World.tid))
              cands
          with
          | [] -> w.World.pick_thread ~step cands
          | alive -> w.World.pick_thread ~step alive);
      pick_input =
        (fun ~step ~tid ~chan ~domain ->
          let p = perturb_prob plan chan in
          if
            p > 0. && domain <> []
            && coin plan ~salt:salt_perturb ~step ~tid ~sid:0 ~chan < p
          then
            let n = List.length domain in
            let k =
              int_of_float
                (coin plan ~salt:salt_perturb_ix ~step ~tid ~sid:0 ~chan
                *. float_of_int n)
            in
            List.nth domain (min k (n - 1))
          else w.World.pick_input ~step ~tid ~chan ~domain);
      on_recv =
        (fun ~step ~tid ~sid ~chan ~actual ->
          let v = w.World.on_recv ~step ~tid ~sid ~chan ~actual in
          Hashtbl.replace last_delivered chan v;
          v);
      on_try_recv =
        (fun ~step ~tid ~sid ~chan ->
          match
            chan_decision plan ~step ~tid ~sid ~chan ~last:(fun () ->
                Hashtbl.find_opt last_delivered chan)
          with
          | World.Default -> w.World.on_try_recv ~step ~tid ~sid ~chan
          | decision -> decision);
    }
