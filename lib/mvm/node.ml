type map = {
  node_list : string list;
  assign : (string * string) list;  (* thread-root fname -> node *)
}

let valid_name s =
  s <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       s

let make ~nodes ~assign =
  if nodes = [] then invalid_arg "Node.make: empty node list";
  List.iter
    (fun n ->
      if not (valid_name n) then
        invalid_arg
          (Printf.sprintf
             "Node.make: node name %S (names become shard file names; use \
              [A-Za-z0-9_-])"
             n))
    nodes;
  let rec dup = function
    | [] -> None
    | n :: rest -> if List.mem n rest then Some n else dup rest
  in
  (match dup nodes with
  | Some n -> invalid_arg (Printf.sprintf "Node.make: duplicate node %S" n)
  | None -> ());
  List.iter
    (fun (f, n) ->
      if not (List.mem n nodes) then
        invalid_arg
          (Printf.sprintf "Node.make: %S assigned to undeclared node %S" f n))
    assign;
  { node_list = nodes; assign }

let nodes map = map.node_list
let node_of_fname map fname = List.assoc_opt fname map.assign

(* ------------------------------------------------------------------ *)
(* static structure walks *)

let rec block_iter f blk = List.iter (stmt_iter f) blk

and stmt_iter f (s : Ast.stmt) =
  f s;
  match s.Ast.node with
  | Ast.If (_, a, b) ->
    block_iter f a;
    block_iter f b
  | Ast.While (_, b) | Ast.Atomic b -> block_iter f b
  | _ -> ()

(* Function names reachable from [root] through Call edges (Spawn starts
   a new thread, not a new location on this node's call tree). *)
let reachable prog root =
  let seen = Hashtbl.create 8 in
  let rec go fname =
    if not (Hashtbl.mem seen fname) then begin
      Hashtbl.replace seen fname ();
      match Ast.find_func prog fname with
      | None -> ()
      | Some fn ->
        block_iter
          (fun s ->
            match s.Ast.node with
            | Ast.Call (_, callee, _) -> go callee
            | _ -> ())
          fn.Ast.body
    end
  in
  go root;
  seen

(* Spawn targets of [root]'s call tree, in program order (calls inlined
   at their call site, both branches of conditionals walked in order). *)
let spawns_in_tree prog root =
  let acc = ref [] in
  let on_stack = Hashtbl.create 8 in
  let rec go fname =
    if not (Hashtbl.mem on_stack fname) then begin
      Hashtbl.replace on_stack fname ();
      (match Ast.find_func prog fname with
      | None -> ()
      | Some fn ->
        block_iter
          (fun s ->
            match s.Ast.node with
            | Ast.Spawn (target, _) -> acc := target :: !acc
            | Ast.Call (_, callee, _) -> go callee
            | _ -> ())
          fn.Ast.body);
      Hashtbl.remove on_stack fname
    end
  in
  go root;
  List.rev !acc

let node_of_exn map fname =
  match node_of_fname map fname with
  | Some n -> n
  | None ->
    invalid_arg
      (Printf.sprintf "Node: thread root %S has no node assignment" fname)

let static_tids map (prog : Ast.program) =
  let roots = prog.Ast.main :: spawns_in_tree prog prog.Ast.main in
  (* a spawned thread that itself spawns makes tid order depend on the
     schedule: refuse rather than mis-assign *)
  List.iteri
    (fun i root ->
      if i > 0 && spawns_in_tree prog root <> [] then
        invalid_arg
          (Printf.sprintf
             "Node.static_tids: spawned thread %S spawns; tid order would \
              depend on the schedule"
             root))
    roots;
  List.mapi (fun tid root -> (tid, node_of_exn map root)) roots

let members map prog node =
  List.filter_map
    (fun (tid, n) -> if String.equal n node then Some tid else None)
    (static_tids map prog)

let chan_nodes map (prog : Ast.program) =
  let uses : (string, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let note chan node =
    match Hashtbl.find_opt uses chan with
    | Some r -> if not (List.mem node !r) then r := node :: !r
    | None -> Hashtbl.replace uses chan (ref [ node ])
  in
  let roots = prog.Ast.main :: spawns_in_tree prog prog.Ast.main in
  List.iter
    (fun root ->
      let node = node_of_exn map root in
      let tree = reachable prog root in
      Hashtbl.iter
        (fun fname () ->
          match Ast.find_func prog fname with
          | None -> ()
          | Some fn ->
            block_iter
              (fun s ->
                match s.Ast.node with
                | Ast.Send (c, _) | Ast.Recv (_, c) | Ast.Try_recv (_, _, c)
                  ->
                  note c node
                | _ -> ())
              fn.Ast.body)
        tree)
    (List.sort_uniq compare roots);
  Hashtbl.fold (fun c r acc -> (c, List.sort compare !r) :: acc) uses []
  |> List.sort compare

let fname_nodes map (prog : Ast.program) =
  let roots = prog.Ast.main :: spawns_in_tree prog prog.Ast.main in
  let tbl : (string, string list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun root ->
      let node = node_of_exn map root in
      Hashtbl.iter
        (fun fname () ->
          match Hashtbl.find_opt tbl fname with
          | Some r -> if not (List.mem node !r) then r := node :: !r
          | None -> Hashtbl.replace tbl fname (ref [ node ]))
        (reachable prog root))
    (List.sort_uniq compare roots);
  Hashtbl.fold (fun f r acc -> (f, List.sort compare !r) :: acc) tbl []
  |> List.sort compare

let cut_channels map prog ~groups =
  let group_of node =
    let rec go i = function
      | [] -> None
      | g :: rest -> if List.mem node g then Some i else go (i + 1) rest
    in
    go 0 groups
  in
  List.filter_map
    (fun (chan, users) ->
      let gs = List.filter_map group_of users |> List.sort_uniq compare in
      if List.length gs >= 2 then Some chan else None)
    (chan_nodes map prog)

let pp ppf map =
  Format.fprintf ppf "nodes: %s" (String.concat ", " map.node_list);
  List.iter
    (fun (f, n) -> Format.fprintf ppf "@ %s -> %s" f n)
    map.assign
