(** Fault-injection plans: deterministic adversarial environments.

    A {!plan} describes an unreliable production machine — lossy and
    duplicating message channels, threads that stall or die, perturbed
    inputs — and {!inject} turns any {!World.t} into the same world run
    under that adversity. Every decision is a pure hash of
    [(plan.seed, fault kind, step, tid, sid, chan)], so an injected world
    stays exactly as deterministic as the world it wraps: the same plan on
    the same world reproduces the same faulted run, which is what lets a
    replayer re-create the adversarial environment from the plan recorded
    in the log.

    Fault semantics are defined against the interpreter's delivery
    attempts (the [on_try_recv] hook), not against the message queues
    themselves:

    - [Drop p] — each delivery attempt on the channel fails with
      probability [p]. A queued message is not destroyed; it is simply not
      delivered by that attempt, which models a lost packet that the
      sender's retransmission (or a later poll) can still get through.
      Blocking receives on a non-empty queue are served directly by the
      VM and are not attempts, so drops starve polling code — exactly the
      code retry loops are for.
    - [Duplicate p] — with probability [p] an attempt yields a copy of
      the last message delivered on that channel (a retransmitted packet
      arriving in place of the next one). Before any delivery there is
      nothing to duplicate and the attempt proceeds normally. A duplicate
      can also wake a blocking receive on an empty queue.
    - [Delay] — all delivery attempts on the channel fail within the step
      window: a link outage.
    - [Stall] — the thread is descheduled for the step window; [Crash]
      deschedules it forever from [at_step] on. When a stalled or crashed
      thread is the only runnable candidate it runs anyway — the plan
      degrades the schedule but never wedges the VM; a genuine deadlock
      must come from the program.
    - [Perturb p] — with probability [p] an input consumes a
      hash-selected domain value instead of the world's choice.

    {b Node-granular faults.} Programs with a {!Node.map} can express
    faults against the deployment topology: [Partition] (deliveries on
    any channel whose users span two groups fail for the window),
    [Node_crash] (every thread of the node dies at a step) and
    [Node_restart] (every thread of the node stalls for a window — the
    process is down but restarts with its memory intact). These are
    {e sugar}: {!lower} desugars them into the [Delay]/[Crash]/[Stall]
    primitives above, deterministically, and the lowered plan is what a
    recorder stamps into the log — so replay re-creates a partitioned
    run with no node knowledge at all, and node faults add no new
    nondeterminism beyond the primitives they expand to. {!inject}
    refuses an un-lowered plan rather than guessing a topology. *)

type chan_action =
  | Drop of float  (** each delivery attempt fails with this probability *)
  | Duplicate of float
      (** each delivery attempt re-delivers the last message with this
          probability *)
  | Delay of { from_step : int; until_step : int }
      (** no deliveries inside [\[from_step, until_step)] *)

type fault =
  | Chan of { chan : string; action : chan_action }
  | Stall of { tid : int; from_step : int; until_step : int }
      (** thread descheduled inside [\[from_step, until_step)] *)
  | Crash of { tid : int; at_step : int }
      (** thread descheduled from [at_step] on *)
  | Perturb of { chan : string; prob : float }
      (** input channel delivers a hash-chosen domain value with this
          probability *)
  | Partition of { groups : string list list; from_step : int; until_step : int }
      (** cross-group deliveries fail inside [\[from_step, until_step)];
          nodes absent from every group are unaffected *)
  | Node_crash of { node : string; at_step : int }
      (** every thread of the node descheduled from [at_step] on *)
  | Node_restart of { node : string; from_step : int; until_step : int }
      (** the node is down for the window; its threads resume with state
          intact *)

type plan = { seed : int; faults : fault list }

(** The empty plan: [inject none] is the identity. *)
val none : plan

val make : ?seed:int -> fault list -> plan
val is_empty : plan -> bool

(** Constructors for the common cases (probabilities default to 0.1). *)

val drop : ?prob:float -> string -> fault
val duplicate : ?prob:float -> string -> fault
val delay : chan:string -> from_step:int -> until_step:int -> fault
val stall : tid:int -> from_step:int -> until_step:int -> fault
val crash : tid:int -> at_step:int -> fault
val perturb : ?prob:float -> string -> fault
val partition : groups:string list list -> from_step:int -> until_step:int -> fault
val node_crash : node:string -> at_step:int -> fault
val node_restart : node:string -> from_step:int -> until_step:int -> fault

(** [is_node_fault f] / [has_node_faults plan] — does the fault (plan)
    involve the node-granular constructors, which need {!lower}? *)
val is_node_fault : fault -> bool

val has_node_faults : plan -> bool

(** [lower ~map ~prog plan] desugars every node-granular fault into the
    thread/channel primitives it stands for, against [prog]'s topology:
    [Partition] becomes a [Delay] on each {!Node.cut_channels} channel,
    [Node_crash] a [Crash] of each {!Node.members} tid, [Node_restart] a
    [Stall] likewise. Primitive faults pass through unchanged, in order.
    Deterministic: the same (plan, map, program) always lowers to the
    same plan, which is what makes the lowered plan a faithful stand-in
    for the node plan inside a recorded log.

    @raise Invalid_argument when the map cannot place a thread (see
    {!Node.static_tids}). *)
val lower : map:Node.map -> prog:Ast.program -> plan -> plan

(** [inject plan w] wraps [w] so it runs under the plan's adversity.
    [inject none w == w].

    @raise Invalid_argument when [plan] still contains node-granular
    faults — {!lower} it first; injection has no topology to interpret
    them against. *)
val inject : plan -> World.t -> World.t

(** [to_string plan] renders the compact comma-separated syntax accepted
    by {!of_string}, e.g.
    ["seed=7,drop:ack_0:0.25,dup:repl:0.1,delay:resp_0:100-400,stall:2:50-90,crash:1:500,perturb:net:0.5"]
    — node clauses render as ["partition:a+b|c:100-400"],
    ["nodecrash:primary:500"] and ["noderestart:p1:100-300"].
    [of_string (to_string p) = Ok p]. *)
val to_string : plan -> string

(** [of_string s] parses the syntax above. Errors name the offending
    clause. *)
val of_string : string -> (plan, string) result

val pp : Format.formatter -> plan -> unit
