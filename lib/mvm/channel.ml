type t = (string, Value.tagged Queue.t) Hashtbl.t

let create () = Hashtbl.create 16

let queue t chan =
  match Hashtbl.find_opt t chan with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t chan q;
    q

let send t chan v = Queue.push v (queue t chan)

let recv t chan =
  let q = queue t chan in
  if Queue.is_empty q then None else Some (Queue.pop q)

let is_empty t chan =
  match Hashtbl.find_opt t chan with
  | None -> true
  | Some q -> Queue.is_empty q

let depth t chan =
  match Hashtbl.find_opt t chan with None -> 0 | Some q -> Queue.length q

let clear t = Hashtbl.iter (fun _ q -> Queue.clear q) t
