(** FIFO message channels for inter-thread communication ([Send]/[Recv]).

    Delivery order is fully determined by the thread schedule: a send
    enqueues immediately, a receive dequeues the head. Channels are created
    on first use. *)

type t

val create : unit -> t

(** [send t chan v] enqueues [v] on [chan]. *)
val send : t -> string -> Value.tagged -> unit

(** [recv t chan] dequeues the head of [chan], or [None] when empty. *)
val recv : t -> string -> Value.tagged option

(** [is_empty t chan] is [true] when [chan] holds no message (unknown
    channels are empty). Used for scheduling candidacy of blocked
    receivers. *)
val is_empty : t -> string -> bool

(** [depth t chan] is the number of queued messages. *)
val depth : t -> string -> int

(** [clear t] drains every queue while keeping the channel table itself, so
    a reused channel set (an arena) starts the next run empty without
    reallocating. *)
val clear : t -> unit
