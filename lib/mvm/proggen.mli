(** Random program generator for property-based testing.

    Generates small terminating concurrent programs (bounded loops only)
    exercising shared scalars, arrays, locks, channels, inputs and outputs.
    The property tests use these to validate record/replay round trips on
    programs nobody hand-tuned. *)

(** Generation knobs. *)
type config = {
  n_threads : int;  (** worker threads spawned by main (>= 0) *)
  body_len : int;  (** statements per thread body *)
  n_scalars : int;  (** shared scalar regions named s0..s{n-1} *)
  arr_len : int;  (** length of the single shared array "arr" *)
  with_channels : bool;  (** allow send/try_recv statements *)
  with_locks : bool;  (** allow balanced lock/unlock pairs *)
}

val default : config

(** [generate cfg prng] is a fresh labelled program; the same [cfg] and PRNG
    state yield the same program. Generated programs always terminate
    (loops are counted), never block forever (receives are [Try_recv]) and
    never crash (indices are taken modulo the array length, divisions
    guarded). *)
val generate : config -> Prng.t -> Label.labeled

(** [generate_nodes ?n_nodes cfg prng] is {!generate} plus a deterministic
    node map spreading the threads over [n_nodes] (default 3) nodes named
    [n0..]: [main] on [n0], worker [k] on [n{(k+1) mod n_nodes}]. Workers
    never spawn, so the map is always {!Node.static_tids}-safe. Used by
    the distributed property suites (static soundness laws, shard
    round-trips). *)
val generate_nodes : ?n_nodes:int -> config -> Prng.t -> Label.labeled * Node.map
