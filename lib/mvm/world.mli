(** Worlds: the interpreter's only source of nondeterminism.

    A world answers exactly three questions — which runnable thread executes
    next, what value an input channel delivers, and (for value-determinism
    replay) what value a shared read observes. A (schedule, inputs) pair
    therefore fully determines a run, which makes every determinism model's
    record/replay contract precise: each model records some projection of
    the world's answers and reconstructs or infers the rest. *)

(** A scheduling candidate: a runnable thread together with the site it is
    about to execute. Oracles use the site to align partial schedule logs
    ("thread t may only run when it is at the next logged site"). *)
type cand = { tid : int; sid : int; fname : string }

type t = {
  name : string;
  pick_thread : step:int -> cand list -> int;
      (** choose the tid of the next thread to run; must be one of the
          candidates *)
  pick_input : step:int -> tid:int -> chan:string -> domain:Value.t list -> Value.t;
      (** choose the value an input statement consumes; normally from
          [domain] *)
  on_read : step:int -> tid:int -> sid:int -> region:string ->
    index:int option -> actual:Value.tagged -> Value.tagged;
      (** observe/override a shared read; identity everywhere except
          value-determinism replay oracles. [sid] is the reading site:
          per-instruction logs align on it *)
  on_recv : step:int -> tid:int -> sid:int -> chan:string ->
    actual:Value.tagged -> Value.tagged;
      (** observe/override a received message value (iDNA logs message data
          as memory reads; this hook gives replay the same power) *)
  on_try_recv : step:int -> tid:int -> sid:int -> chan:string ->
    try_recv_decision;
      (** decide a receive's outcome before the queue is consulted — MUST
          BE PURE (peek, not pop): the scheduler also calls it to decide
          whether a blocking [Recv] on an empty channel is runnable.
          [Default] keeps physical semantics; [Force_fail] makes a poll
          miss; [Force_value v] makes the receive succeed with [v] even on
          an empty queue (a non-empty head is consumed, since the forced
          success stands for a real message). Every successful receive is
          then routed through [on_recv], which is where a stateful oracle
          advances its log. Value- and sync-determinism replay need this:
          the success of a poll is part of a thread's observed values /
          per-object operation order. *)
  passive_try_recv : bool;
      (** [true] promises that [on_try_recv] is the constant [Default]
          answer — it never forces a poll outcome and its result does not
          depend on [step] or any oracle cursor. Under that promise a
          blocked [Recv] on an empty channel can only become runnable
          through a channel operation, which lets the interpreter cache
          its scheduling-candidate set between steps (the search fast
          path). Worlds with a stateful or forcing [on_try_recv] (replay
          oracles, fault plans) must leave this [false]; the interpreter
          then recomputes candidates every step, exactly as before. *)
}

and try_recv_decision = Default | Force_fail | Force_value of Value.tagged

(** [random ~seed] resolves both schedule and inputs uniformly at random
    from a deterministic PRNG — the model of an uncontrolled production
    environment. *)
val random : seed:int -> t

(** [prioritized ~seed ~prefer] resolves schedule and inputs like
    {!random}, but biases thread picks toward candidates satisfying
    [prefer] (a hot candidate set wins 3 draws in 4; the fourth draw is
    uniform over all candidates, so every schedule stays reachable).
    Static race analysis uses this to point the replay search at suspect
    sites. *)
val prioritized : seed:int -> prefer:(cand -> bool) -> t

(** [round_robin ()] cycles threads in tid order and picks the first domain
    value for every input: a deterministic baseline useful in tests. *)
val round_robin : unit -> t

(** [with_name name w] renames a world (for reports). *)
val with_name : string -> t -> t

(** [override_reads f w] wraps [w] so shared reads go through [f] first. *)
val override_reads :
  (step:int -> tid:int -> sid:int -> region:string -> index:int option ->
   actual:Value.tagged -> Value.tagged option) ->
  t -> t

(** [override_recvs f w] wraps [w] so received message values go through [f]
    first. *)
val override_recvs :
  (step:int -> tid:int -> sid:int -> chan:string -> actual:Value.tagged ->
   Value.tagged option) ->
  t -> t
