(** Node-aware may-happen-in-parallel: {!Callgraph.concurrent} refined
    with deployment placement.

    Two refinements, both sound with respect to the dynamic
    happens-before detector (a pair ruled out here is ordered in every
    execution, so no dynamic race report can name it):

    - {e single-threaded nodes}: sites that can only execute on a node
      hosting exactly one [Single]-multiplicity thread entry share a
      thread and never overlap;
    - {e FIFO send→recv ordering}: a channel with exactly one
      once-executed send site and one once-executed blocking receive
      site (different threads, no [try_recv] competitors) carries
      exactly one message, so everything sequenced at/before the send
      happens-before everything sequenced at/after the receive.

    By construction [concurrent t a b] implies
    [Callgraph.concurrent g a b] — the subset law the property suite
    checks. Feed the result to {!Lockset.analyze} via its [?mhp]
    argument to tighten race candidates, and through them the per-node
    suspect sites of {!Static_report}. *)

open Mvm

type t

(** @raise Invalid_argument when a thread root has no node assignment. *)
val analyze : map:Node.map -> Callgraph.t -> t

(** The placement-refined may-happen-in-parallel relation. *)
val concurrent : t -> Callgraph.access -> Callgraph.access -> bool

(** [ordered t a b]: site [a] happens-before site [b] through a
    unique-message channel (exposed for tests and reports). *)
val ordered : t -> Callgraph.access -> Callgraph.access -> bool

(** The nodes whose threads may execute a function (empty for dead
    code). *)
val nodes_of_fname : t -> string -> string list

(** The channel orderings found: (chan, (send fname, sid),
    (recv fname, sid)). *)
val fifos : t -> (string * (string * int) * (string * int)) list

val pp : Format.formatter -> t -> unit
