open Mvm
open Mvm.Ast

module SS = Set.Make (String)
module IS = Set.Make (Int)

type multiplicity = Single | Many

type entry = { entry : string; mult : multiplicity }

type idx = No_index | Const_idx of int | Var_idx

type access = {
  sid : int;
  fname : string;
  region : string;
  index : idx;
  write : bool;
}

type t = {
  labeled : Label.labeled;
  entries : entry list;
  reach : (string, SS.t) Hashtbl.t;
  accesses : access list;
  prologue : IS.t;
}

let idx_of = function
  | Const (Value.Vint n) -> Const_idx n
  | Const _ -> Var_idx
  | _ -> Var_idx

(* Region reads performed by evaluating an expression. [Arr_len] is not a
   read: the interpreter emits no Read event for it (array length is a
   static property, not shared state). *)
let rec expr_reads acc = function
  | Const _ | Var _ | Arr_len _ -> acc
  | Load_scalar r -> (r, No_index) :: acc
  | Load (r, i) -> expr_reads ((r, idx_of i) :: acc) i
  | Binop (_, a, b) -> expr_reads (expr_reads acc a) b
  | Unop (_, e) -> expr_reads acc e

(* Shared-region accesses of a statement's own evaluation: only the
   expressions the statement itself evaluates. Nested blocks are visited
   as their own statements (their events carry their own sids, except
   If/While conditions which carry the If/While sid — matching this
   attribution). *)
let node_accesses fname sid node =
  let reads es =
    List.concat_map
      (fun e ->
        List.map
          (fun (region, index) -> { sid; fname; region; index; write = false })
          (expr_reads [] e))
      es
  in
  match node with
  | Assign (_, e) | Output (_, e) | Send (_, e) | Return e | Assert (e, _) ->
    reads [ e ]
  | Store (r, i, e) ->
    { sid; fname; region = r; index = idx_of i; write = true } :: reads [ i; e ]
  | Store_scalar (r, e) ->
    { sid; fname; region = r; index = No_index; write = true } :: reads [ e ]
  | If (c, _, _) | While (c, _) -> reads [ c ]
  | Spawn (_, args) | Call (_, _, args) -> reads args
  | Skip | Input _ | Recv _ | Try_recv _ | Lock _ | Unlock _ | Fail _ | Yield
  | Atomic _ ->
    []

let accesses_of_program prog =
  List.rev
    (fold_stmts
       (fun acc fname s -> List.rev_append (node_accesses fname s.sid s.node) acc)
       [] prog)

(* [true] when executing [fn] can create a thread: a Spawn in [fn] or in
   any function reachable from it through Call edges. *)
let spawns_transitively prog =
  let direct = Hashtbl.create 16 in
  let calls = Hashtbl.create 16 in
  fold_stmts
    (fun () fname s ->
      match s.node with
      | Spawn _ -> Hashtbl.replace direct fname true
      | Call (_, g, _) ->
        Hashtbl.replace calls fname
          (g :: Option.value ~default:[] (Hashtbl.find_opt calls fname))
      | _ -> ())
    () prog;
  let memo = Hashtbl.create 16 in
  let rec go seen fn =
    match Hashtbl.find_opt memo fn with
    | Some b -> b
    | None ->
      if SS.mem fn seen then false
      else
        let seen = SS.add fn seen in
        let b =
          Hashtbl.mem direct fn
          || List.exists (go seen)
               (Option.value ~default:[] (Hashtbl.find_opt calls fn))
        in
        Hashtbl.replace memo fn b;
        b
  in
  fun fn -> go SS.empty fn

(* Spawn statements with the syntactic context needed for the multiplicity
   judgement: the spawning function and whether the spawn sits under a
   While loop. *)
let spawn_sites prog =
  List.concat_map
    (fun (f : func) ->
      let rec blk in_loop acc b =
        List.fold_left
          (fun acc s ->
            match s.node with
            | Spawn (target, _) -> (f.fname, target, in_loop) :: acc
            | If (_, b1, b2) -> blk in_loop (blk in_loop acc b1) b2
            | While (_, body) -> blk true acc body
            | Atomic body -> blk in_loop acc body
            | _ -> acc)
          acc b
      in
      blk false [] f.body)
    prog.funcs

let build (labeled : Label.labeled) =
  let prog = labeled.Label.prog in
  let spawns = spawn_sites prog in
  let spawn_targets =
    List.sort_uniq String.compare (List.map (fun (_, t, _) -> t) spawns)
  in
  let main_spawned = List.mem prog.main spawn_targets in
  let main_called =
    fold_stmts
      (fun acc _ s ->
        match s.node with
        | Call (_, fn, _) when String.equal fn prog.main -> true
        | _ -> acc)
      false prog
  in
  (* A spawn target runs as a single thread instance only when we can prove
     it statically: exactly one spawn statement targets it, that spawn is
     in [main] and not under a loop, and [main] itself runs exactly once.
     Everything else is treated as multi-instance (sound for race
     candidacy: more instances, more races). *)
  let single target =
    match List.filter (fun (_, t, _) -> String.equal t target) spawns with
    | [ (spawner, _, in_loop) ] ->
      String.equal spawner prog.main && (not in_loop) && (not main_spawned)
      && not main_called
    | _ -> false
  in
  let entries =
    { entry = prog.main;
      mult = (if main_spawned || main_called then Many else Single) }
    :: List.map
         (fun t ->
           { entry = t; mult = (if single t then Single else Many) })
         (List.filter (fun t -> not (String.equal t prog.main)) spawn_targets)
  in
  (* Call-closure reachability per entry. Spawn targets are separate
     entries: a spawn hands work to another thread, it does not put the
     target's sites on the spawner's stack. *)
  let calls = Hashtbl.create 16 in
  fold_stmts
    (fun () fname s ->
      match s.node with
      | Call (_, g, _) ->
        Hashtbl.replace calls fname
          (g :: Option.value ~default:[] (Hashtbl.find_opt calls fname))
      | _ -> ())
    () prog;
  let closure root =
    let rec go seen = function
      | [] -> seen
      | fn :: rest ->
        if SS.mem fn seen then go seen rest
        else
          go (SS.add fn seen)
            (Option.value ~default:[] (Hashtbl.find_opt calls fn) @ rest)
    in
    go SS.empty [ root ]
  in
  let reach = Hashtbl.create 8 in
  List.iter (fun e -> Hashtbl.replace reach e.entry (closure e.entry)) entries;
  (* Prologue: sids of main's leading statements executed before any other
     thread can exist. While main is the only thread, no access can race.
     Stop at the first statement that spawns or calls into spawning code. *)
  let spawns_trans = spawns_transitively prog in
  let prologue =
    if main_spawned || main_called then IS.empty
    else
      match find_func prog prog.main with
      | None -> IS.empty
      | Some f ->
        let rec sids_of acc (s : stmt) =
          let acc = IS.add s.sid acc in
          match s.node with
          | If (_, b1, b2) ->
            List.fold_left sids_of (List.fold_left sids_of acc b1) b2
          | While (_, b) | Atomic b -> List.fold_left sids_of acc b
          | _ -> acc
        in
        let rec can_spawn (s : stmt) =
          match s.node with
          | Spawn _ -> true
          | Call (_, g, _) -> spawns_trans g
          | If (_, b1, b2) -> List.exists can_spawn b1 || List.exists can_spawn b2
          | While (_, b) | Atomic b -> List.exists can_spawn b
          | _ -> false
        in
        let rec walk acc = function
          | [] -> acc
          | s :: rest ->
            if can_spawn s then acc else walk (sids_of acc s) rest
        in
        walk IS.empty f.body
  in
  { labeled; entries; reach; accesses = accesses_of_program prog; prologue }

let labeled t = t.labeled

let entries t = t.entries

let reachable t entry =
  Option.value ~default:SS.empty (Hashtbl.find_opt t.reach entry)

let entries_reaching t fname =
  List.filter (fun e -> SS.mem fname (reachable t e.entry)) t.entries

let accesses t = t.accesses

let prologue_sids t = IS.elements t.prologue

let in_prologue t sid = IS.mem sid t.prologue

(* Two sites can execute in different threads at the same time: they are
   reached from distinct thread entries, or from one entry that has
   several live instances. *)
let concurrent t a b =
  let ea = entries_reaching t a.fname and eb = entries_reaching t b.fname in
  List.exists
    (fun e1 ->
      List.exists
        (fun e2 ->
          (not (String.equal e1.entry e2.entry)) || e1.mult = Many)
        eb)
    ea
  && (not (in_prologue t a.sid))
  && not (in_prologue t b.sid)

let pp_idx ppf = function
  | No_index -> ()
  | Const_idx n -> Fmt.pf ppf "[%d]" n
  | Var_idx -> Fmt.pf ppf "[*]"

let pp_access ppf a =
  Fmt.pf ppf "#%d %s %s%a in %s" a.sid
    (if a.write then "write" else "read")
    a.region pp_idx a.index a.fname
