open Mvm
open Mvm.Ast
module SS = Callgraph.SS

type severity = Error | Warning

type finding = {
  severity : severity;
  sid : int option;
  fname : string option;
  rule : string;
  msg : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let pp_finding ppf f =
  Fmt.pf ppf "%s: %s%s%s: %s"
    (severity_name f.severity)
    (match f.fname with Some fn -> fn ^ " " | None -> "")
    (match f.sid with Some s -> Printf.sprintf "#%d " s | None -> "")
    f.rule f.msg

let errors fs = List.filter (fun f -> f.severity = Error) fs

(* The walk keeps two locksets per program point: [must] (held on every
   path here) and [may] (held on some path). must <= may; a Lock already
   in [must] is a guaranteed relock crash, one only in [may] might be. *)

let run (labeled : Label.labeled) =
  let prog = labeled.Label.prog in
  let out = ref [] in
  let add severity ?sid ~fname rule msg =
    out := { severity; sid; fname = Some fname; rule; msg } :: !out
  in
  let func_names =
    SS.of_list (List.map (fun (f : func) -> f.fname) prog.funcs)
  in
  let scalars, arrays =
    List.partition_map
      (function
        | Scalar_decl (r, _) -> Left r
        | Array_decl (r, n, _) -> Right (r, n))
      prog.regions
  in
  let scalars = SS.of_list scalars in
  let arity fn =
    Option.map (fun (f : func) -> List.length f.params) (find_func prog fn)
  in
  (* channels that some Send can ever fill: a blocking Recv elsewhere is a
     guaranteed deadlock *)
  let sent =
    fold_stmts
      (fun acc _ s ->
        match s.node with Send (ch, _) -> SS.add ch acc | _ -> acc)
      SS.empty prog
  in
  let check_array ~sid ~fname r idx_opt =
    match List.assoc_opt r arrays with
    | None ->
      if SS.mem r scalars then
        add Error ~sid ~fname "region-kind"
          (Printf.sprintf "array access to scalar region %s" r)
      else
        add Error ~sid ~fname "undeclared-region"
          (Printf.sprintf "array region %s is not declared" r)
    | Some len -> (
      match idx_opt with
      | Some n when n < 0 || n >= len ->
        add Error ~sid ~fname "index-range"
          (Printf.sprintf "constant index %d out of range for %s[%d]" n r len)
      | _ -> ())
  in
  let check_scalar ~sid ~fname r =
    if not (SS.mem r scalars) then
      if List.mem_assoc r arrays then
        add Error ~sid ~fname "region-kind"
          (Printf.sprintf "scalar access to array region %s" r)
      else
        add Error ~sid ~fname "undeclared-region"
          (Printf.sprintf "scalar region %s is not declared" r)
  in
  let rec check_expr ~sid ~fname = function
    | Const _ | Var _ -> ()
    | Load_scalar r -> check_scalar ~sid ~fname r
    | Arr_len r -> check_array ~sid ~fname r None
    | Load (r, i) ->
      let idx = match i with Const (Value.Vint n) -> Some n | _ -> None in
      check_array ~sid ~fname r idx;
      check_expr ~sid ~fname i
    | Binop (_, a, b) ->
      check_expr ~sid ~fname a;
      check_expr ~sid ~fname b
    | Unop (_, e) -> check_expr ~sid ~fname e
  in
  let check_target ~sid ~fname fn args =
    if not (SS.mem fn func_names) then
      add Error ~sid ~fname "undeclared-function"
        (Printf.sprintf "function %s is not defined" fn)
    else
      match arity fn with
      | Some n when n <> List.length args ->
        add Error ~sid ~fname "arity"
          (Printf.sprintf "%s expects %d arguments, got %d" fn n
             (List.length args))
      | _ -> ()
  in
  (* stmt returns the post state; None = no fallthrough (Return/Fail) *)
  let rec blk st ~atomic ~fname (stmts : Ast.stmt list) =
    match stmts with
    | [] -> st
    | s :: rest -> (
      match st with
      | None ->
        add Warning ~sid:s.sid ~fname "unreachable"
          (Printf.sprintf "statement after return/fail never executes (%s)"
             (node_kind s.node));
        None
      | Some _ -> blk (stmt st ~atomic ~fname s) ~atomic ~fname rest)
  and stmt st ~atomic ~fname (s : stmt) =
    let sid = s.sid in
    let must, may = match st with Some x -> x | None -> assert false in
    let keep = Some (must, may) in
    match s.node with
    | Skip | Yield -> keep
    | Assign (_, e) | Output (_, e) | Assert (e, _) ->
      check_expr ~sid ~fname e;
      keep
    | Send (ch, e) ->
      ignore ch;
      check_expr ~sid ~fname e;
      keep
    | Store (r, i, e) ->
      let idx = match i with Const (Value.Vint n) -> Some n | _ -> None in
      check_array ~sid ~fname r idx;
      check_expr ~sid ~fname i;
      check_expr ~sid ~fname e;
      keep
    | Store_scalar (r, e) ->
      check_scalar ~sid ~fname r;
      check_expr ~sid ~fname e;
      keep
    | Input (_, ch) ->
      if not (List.mem_assoc ch prog.input_domains) then
        add Error ~sid ~fname "undeclared-channel"
          (Printf.sprintf "input channel %s has no declared domain" ch);
      keep
    | Recv (_, ch) ->
      if atomic then
        add Error ~sid ~fname "atomic-blocking"
          (Printf.sprintf "recv(%s) inside atomic crashes on an empty channel"
             ch);
      if not (SS.mem ch sent) then
        add Error ~sid ~fname "recv-never-sent"
          (Printf.sprintf
             "blocking recv on %s, but nothing ever sends to it (deadlock)" ch);
      keep
    | Try_recv (_, _, ch) ->
      if not (SS.mem ch sent) then
        add Warning ~sid ~fname "recv-never-sent"
          (Printf.sprintf "try_recv on %s, but nothing ever sends to it" ch);
      keep
    | Lock m ->
      if atomic then
        add Error ~sid ~fname "atomic-blocking"
          (Printf.sprintf "lock(%s) inside atomic crashes on contention" m);
      if SS.mem m must then
        add Error ~sid ~fname "double-lock"
          (Printf.sprintf "relock of %s by the same thread (self-deadlock)" m)
      else if SS.mem m may then
        add Warning ~sid ~fname "double-lock"
          (Printf.sprintf "%s may already be held on some path" m);
      Some (SS.add m must, SS.add m may)
    | Unlock m ->
      if not (SS.mem m may) then
        add Error ~sid ~fname "unlock-not-held"
          (Printf.sprintf "unlock of %s which is not held" m)
      else if not (SS.mem m must) then
        add Warning ~sid ~fname "unlock-not-held"
          (Printf.sprintf "%s may not be held on some path" m);
      Some (SS.remove m must, SS.remove m may)
    | Spawn (fn, args) ->
      if atomic then
        add Error ~sid ~fname "atomic-blocking" "spawn inside atomic crashes";
      check_target ~sid ~fname fn args;
      List.iter (check_expr ~sid ~fname) args;
      keep
    | Call (_, fn, args) ->
      if atomic then
        add Error ~sid ~fname "atomic-blocking" "call inside atomic crashes";
      check_target ~sid ~fname fn args;
      List.iter (check_expr ~sid ~fname) args;
      keep
    | Return e ->
      if atomic then
        add Error ~sid ~fname "atomic-blocking" "return inside atomic crashes";
      check_expr ~sid ~fname e;
      if not (SS.is_empty may) then
        add Error ~sid ~fname "lock-imbalance"
          (Printf.sprintf "returns still holding {%s}"
             (String.concat "," (SS.elements may)));
      None
    | Fail _ -> None
    | If (c, b1, b2) -> (
      check_expr ~sid ~fname c;
      let st1 = blk keep ~atomic ~fname b1 in
      let st2 = blk keep ~atomic ~fname b2 in
      match (st1, st2) with
      | None, x | x, None -> x
      | Some (m1, y1), Some (m2, y2) ->
        if not (SS.equal m1 m2 && SS.equal y1 y2) then
          add Warning ~sid ~fname "branch-locks"
            "if branches exit holding different locks";
        Some (SS.inter m1 m2, SS.union y1 y2))
    | While (c, b) ->
      check_expr ~sid ~fname c;
      (match blk keep ~atomic ~fname b with
      | Some (m', y') when not (SS.equal m' must && SS.equal y' may) ->
        add Error ~sid ~fname "loop-locks"
          "loop body changes the held locks (second iteration misbehaves)"
      | _ -> ());
      keep
    | Atomic b ->
      ignore (blk keep ~atomic:true ~fname b);
      keep
  in
  if not (SS.mem prog.main func_names) then
    add Error ~fname:prog.main "undeclared-function"
      (Printf.sprintf "main function %s is not defined" prog.main);
  List.iter
    (fun (f : func) ->
      match blk (Some (SS.empty, SS.empty)) ~atomic:false ~fname:f.fname f.body with
      | Some (_, may) when not (SS.is_empty may) ->
        add Error ~fname:f.fname "lock-imbalance"
          (Printf.sprintf "function exits still holding {%s}"
             (String.concat "," (SS.elements may)))
      | _ -> ())
    prog.funcs;
  List.rev !out
