(** Eraser/RacerD-style static lockset race analysis (must-held locksets,
    interprocedural, path-meeting).

    A {e static race candidate} is a pair of shared-region access sites
    that (1) touch the same region with compatible indices, (2) include at
    least one write, (3) can execute in two distinct live threads
    ({!Callgraph.concurrent}), and (4) hold disjoint must-locksets.
    Locksets are under-approximated (intersection at joins and call
    contexts), so candidates over-approximate the races the dynamic
    happens-before detector can report: two sites sharing a must-held
    lock are always ordered by that lock's release->acquire edge. *)

module SS = Callgraph.SS

type candidate = {
  region : string;
  a : Callgraph.access;
  b : Callgraph.access;  (** [a.sid <= b.sid]; equal for self-races *)
  locks_a : string list;
  locks_b : string list;
}

type result

(** [analyze ?mhp graph] — when [mhp] is given, condition (3) uses the
    node-aware {!Mhp.concurrent} instead of {!Callgraph.concurrent},
    dropping pairs that deployment placement provably orders. Since
    [Mhp.concurrent ⊆ Callgraph.concurrent], the candidate set only
    shrinks. *)
val analyze : ?mhp:Mhp.t -> Callgraph.t -> result

(** Candidates sorted by (region, sid pair), deduplicated per pair. *)
val candidates : result -> candidate list

(** The sorted, deduplicated sids involved in any candidate — the suspect
    sites handed to the RCSE trigger and the search priority hint. *)
val suspect_sids : result -> int list

(** Must-held lockset at a site; [None] when the site is statically
    unreachable. *)
val lockset_at : result -> int -> string list option

val pp_candidate : Format.formatter -> candidate -> unit
