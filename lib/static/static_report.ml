open Mvm
module P = Ddet_analysis.Plane

type node_view = {
  node : string;
  tids : int list;
  fnames : string list;
  suspects : int list;
  channels : string list;
  edges_out : Msgflow.edge list;
}

type dist = {
  map : Node.map;
  flow : Msgflow.t;
  mhp : Mhp.t;
  views : node_view list;
}

type t = {
  labeled : Label.labeled;
  races : Lockset.candidate list;
  suspects : int list;
  planes : (string * P.t * int) list;
  lints : Lint.finding list;
  threshold_bytes : int;
  dist : dist option;
}

let node_views_of labeled map flow suspects =
  let prog = labeled.Label.prog in
  let table = labeled.Label.table in
  let fname_nodes = Node.fname_nodes map prog in
  let fname_of sid =
    match Label.site table sid with
    | { Label.fname; _ } -> Some fname
    | exception Not_found -> None
  in
  List.map
    (fun node ->
      let fnames =
        List.filter_map
          (fun (f, ns) -> if List.mem node ns then Some f else None)
          fname_nodes
      in
      let suspects =
        List.filter
          (fun sid ->
            match fname_of sid with
            | Some f -> List.mem f fnames
            | None -> false)
          suspects
      in
      {
        node;
        tids = Node.members map prog node;
        fnames;
        suspects;
        channels = Msgflow.node_channels flow node;
        edges_out =
          List.filter
            (fun (e : Msgflow.edge) -> e.Msgflow.from_node = node)
            (Msgflow.cross_edges flow);
      })
    (Node.nodes map)

let analyze ?(threshold_bytes = Splane.default_threshold) ?nodes labeled =
  let graph = Callgraph.build labeled in
  let prog = labeled.Label.prog in
  let base_lints = Lint.run labeled in
  let dist, ls, lints =
    match nodes with
    | None -> (None, Lockset.analyze graph, base_lints)
    | Some map ->
      let mhp = Mhp.analyze ~map graph in
      let flow = Msgflow.analyze ~map labeled in
      let ls = Lockset.analyze ~mhp graph in
      let lints = base_lints @ Commlint.run ~map labeled in
      let views = node_views_of labeled map flow (Lockset.suspect_sids ls) in
      (Some { map; flow; mhp; views }, ls, lints)
  in
  let weights = Splane.analyze ~threshold_bytes prog in
  let planes =
    List.map
      (fun (fname, w) ->
        (fname, (if w > threshold_bytes then P.Data else P.Control), w))
      (Splane.weights weights)
  in
  {
    labeled;
    races = Lockset.candidates ls;
    suspects = Lockset.suspect_sids ls;
    planes;
    lints;
    threshold_bytes;
    dist;
  }

let races t = t.races
let suspect_sids t = t.suspects
let lints t = t.lints
let has_lint_errors t = Lint.errors t.lints <> []
let msgflow t = Option.map (fun d -> d.flow) t.dist
let mhp t = Option.map (fun d -> d.mhp) t.dist
let node_views t = match t.dist with None -> [] | Some d -> d.views

let plane_map t = P.of_assoc (List.map (fun (f, p, _) -> (f, p)) t.planes)

let trigger t = Ddet_analysis.Trigger.of_sites ~name:"static-races" t.suspects

let trigger_selector ?(sticky = true) ?window t =
  Ddet_analysis.Trigger.selector ~sticky ?window [ trigger t ]

let site_selector t =
  let tbl = Hashtbl.create 16 in
  List.iter (fun sid -> Hashtbl.replace tbl sid ()) t.suspects;
  Ddet_record.Fidelity_level.by_site ~name:"static-sites" (fun sid ->
      if Hashtbl.mem tbl sid then Ddet_record.Fidelity_level.High
      else Ddet_record.Fidelity_level.Low)

let code_selector t =
  let map = plane_map t in
  Ddet_record.Fidelity_level.by_function ~name:"static-code" (fun fname ->
      match P.plane_of map fname with
      | P.Control -> Ddet_record.Fidelity_level.High
      | P.Data -> Ddet_record.Fidelity_level.Low)

let node_site_selector t ~node =
  let sids =
    match List.find_opt (fun v -> v.node = node) (node_views t) with
    | Some v -> v.suspects
    | None -> []
  in
  let tbl = Hashtbl.create 16 in
  List.iter (fun sid -> Hashtbl.replace tbl sid ()) sids;
  Ddet_record.Fidelity_level.by_site
    ~name:(Printf.sprintf "static-sites@%s" node) (fun sid ->
      if Hashtbl.mem tbl sid then Ddet_record.Fidelity_level.High
      else Ddet_record.Fidelity_level.Low)

(* shard write order: nodes carrying more suspect sites first, map order
   breaking ties — under hostile stores the most diagnostic shard hits
   disk with the fewest writes in front of it *)
let shard_priority t =
  let views = node_views t in
  List.stable_sort
    (fun (a : node_view) (b : node_view) ->
      compare (List.length b.suspects) (List.length a.suspects))
    views
  |> List.map (fun v -> v.node)

type steer_hint = {
  lost_tids : int list;
  hot_sids : int list;
  cold_input_tids : int list;
}

let steer t ~lost =
  match t.dist with
  | None -> { lost_tids = []; hot_sids = []; cold_input_tids = [] }
  | Some d ->
    let prog = t.labeled.Label.prog in
    let survivors =
      List.filter (fun n -> not (List.mem n lost)) (Node.nodes d.map)
    in
    let hot_chans = Msgflow.hot_channels d.flow ~lost ~survivors in
    let lost_views = List.filter (fun v -> List.mem v.node lost) d.views in
    let lost_tids = List.concat_map (fun v -> v.tids) lost_views in
    (* hot sids: a lost node's sends on channels that can still land on a
       survivor, plus its race-suspect sites — the decision points whose
       order the search should actually explore *)
    let hot_sids =
      List.concat_map
        (fun (v : node_view) ->
          v.suspects
          @ List.filter_map
              (fun (s : Msgflow.site) ->
                if
                  List.mem s.Msgflow.chan hot_chans
                  && List.exists (fun n -> List.mem n s.Msgflow.nodes) lost
                then Some s.Msgflow.sid
                else None)
              (Msgflow.sites d.flow))
        lost_views
      |> List.sort_uniq compare
    in
    (* cold: lost nodes with no static path to any survivor — nothing
       they did can show up in the surviving evidence, so their inputs
       need no search (pin to a canonical value) *)
    let cold_nodes =
      List.filter
        (fun n ->
          not
            (List.exists
               (fun s -> Msgflow.reaches d.flow n s)
               survivors))
        lost
    in
    let cold_input_tids =
      List.concat_map (fun n -> Node.members d.map prog n) cold_nodes
      |> List.sort_uniq compare
    in
    { lost_tids = List.sort_uniq compare lost_tids; hot_sids; cold_input_tids }

(* ------------------------------------------------------------------ *)
(* JSON dump: hand-rolled, no deps *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)
let jlist f xs = "[" ^ String.concat "," (List.map f xs) ^ "]"
let jint = string_of_int

let to_json t =
  let race (c : Lockset.candidate) =
    Printf.sprintf
      "{\"region\":%s,\"a\":{\"sid\":%d,\"fname\":%s,\"write\":%b},\"b\":{\"sid\":%d,\"fname\":%s,\"write\":%b},\"locks_a\":%s,\"locks_b\":%s}"
      (jstr c.Lockset.region) c.Lockset.a.Callgraph.sid
      (jstr c.Lockset.a.Callgraph.fname)
      c.Lockset.a.Callgraph.write c.Lockset.b.Callgraph.sid
      (jstr c.Lockset.b.Callgraph.fname)
      c.Lockset.b.Callgraph.write
      (jlist jstr c.Lockset.locks_a)
      (jlist jstr c.Lockset.locks_b)
  in
  let plane (f, p, w) =
    Printf.sprintf "{\"fname\":%s,\"plane\":%s,\"weight\":%d}" (jstr f)
      (jstr (P.to_string p))
      w
  in
  let lint (f : Lint.finding) =
    Printf.sprintf "{\"severity\":%s,\"rule\":%s,\"sid\":%s,\"fname\":%s,\"msg\":%s}"
      (jstr (match f.Lint.severity with Lint.Error -> "error" | Lint.Warning -> "warning"))
      (jstr f.Lint.rule)
      (match f.Lint.sid with Some s -> jint s | None -> "null")
      (match f.Lint.fname with Some f -> jstr f | None -> "null")
      (jstr f.Lint.msg)
  in
  let view v =
    Printf.sprintf
      "{\"node\":%s,\"tids\":%s,\"fnames\":%s,\"suspects\":%s,\"channels\":%s,\"edges_out\":%s}"
      (jstr v.node) (jlist jint v.tids) (jlist jstr v.fnames)
      (jlist jint v.suspects) (jlist jstr v.channels)
      (jlist
         (fun (e : Msgflow.edge) ->
           Printf.sprintf "{\"chan\":%s,\"from\":%s,\"to\":%s}"
             (jstr e.Msgflow.chan) (jstr e.Msgflow.from_node)
             (jstr e.Msgflow.to_node))
         v.edges_out)
  in
  Printf.sprintf
    "{\"program\":%s,\"threshold_bytes\":%d,\"races\":%s,\"suspect_sids\":%s,\"planes\":%s,\"lints\":%s,\"nodes\":%s}"
    (jstr t.labeled.Label.prog.Ast.name)
    t.threshold_bytes (jlist race t.races) (jlist jint t.suspects)
    (jlist plane t.planes) (jlist lint t.lints)
    (jlist view (node_views t))

(* ------------------------------------------------------------------ *)

let pp_site table ppf sid =
  match Label.site table sid with
  | { Label.fname; kind } -> Fmt.pf ppf "#%d (%s in %s)" sid kind fname
  | exception Not_found -> Fmt.pf ppf "#%d" sid

let pp ppf t =
  let table = t.labeled.Label.table in
  let name = t.labeled.Label.prog.Ast.name in
  Fmt.pf ppf "@[<v>== static analysis: %s ==@,@," name;
  Fmt.pf ppf "@[<v2>race candidates (%d):@," (List.length t.races);
  (match t.races with
  | [] -> Fmt.pf ppf "none"
  | rs ->
    Fmt.pf ppf "%a"
      (Fmt.list ~sep:Fmt.cut (fun ppf c -> Lockset.pp_candidate ppf c))
      rs);
  Fmt.pf ppf "@]@,@,";
  Fmt.pf ppf "@[<v2>plane map (threshold %dB):@," t.threshold_bytes;
  Fmt.pf ppf "%a"
    (Fmt.list ~sep:Fmt.cut (fun ppf (f, p, w) ->
         Fmt.pf ppf "%-14s %-7s (weight %dB)" f (P.to_string p) w))
    t.planes;
  Fmt.pf ppf "@]@,@,";
  Fmt.pf ppf "@[<v2>lint (%d error(s), %d warning(s)):@,"
    (List.length (Lint.errors t.lints))
    (List.length t.lints - List.length (Lint.errors t.lints));
  (match t.lints with
  | [] -> Fmt.pf ppf "clean"
  | fs -> Fmt.pf ppf "%a" (Fmt.list ~sep:Fmt.cut Lint.pp_finding) fs);
  Fmt.pf ppf "@]@,";
  if t.suspects <> [] then
    Fmt.pf ppf "@,suspect sites: %a@,"
      (Fmt.list ~sep:Fmt.comma (pp_site table))
      t.suspects;
  match t.dist with
  | None -> ()
  | Some d ->
    Fmt.pf ppf "@,@[<v2>nodes (%d):@," (List.length d.views);
    List.iter
      (fun v ->
        Fmt.pf ppf "@[<v2>%s (tids %s):@," v.node
          (String.concat "," (List.map string_of_int v.tids));
        Fmt.pf ppf "functions: %s@," (String.concat ", " v.fnames);
        Fmt.pf ppf "channels:  %s@,"
          (match v.channels with [] -> "none" | cs -> String.concat ", " cs);
        (match v.suspects with
        | [] -> Fmt.pf ppf "suspects:  none@,"
        | ss ->
          Fmt.pf ppf "suspects:  %a@,"
            (Fmt.list ~sep:Fmt.comma (pp_site table))
            ss);
        List.iter
          (fun (e : Msgflow.edge) ->
            Fmt.pf ppf "may-send %s -> %s@," e.Msgflow.chan e.Msgflow.to_node)
          v.edges_out;
        Fmt.pf ppf "@]@,")
      d.views;
    Fmt.pf ppf "shard priority: %s@,"
      (String.concat " > " (shard_priority t));
    Fmt.pf ppf "@]@,"
