open Mvm
module P = Ddet_analysis.Plane

type t = {
  labeled : Label.labeled;
  races : Lockset.candidate list;
  suspects : int list;
  planes : (string * P.t * int) list;
  lints : Lint.finding list;
  threshold_bytes : int;
}

let analyze ?(threshold_bytes = Splane.default_threshold) labeled =
  let graph = Callgraph.build labeled in
  let ls = Lockset.analyze graph in
  let prog = labeled.Label.prog in
  let weights = Splane.analyze ~threshold_bytes prog in
  let planes =
    List.map
      (fun (fname, w) ->
        (fname, (if w > threshold_bytes then P.Data else P.Control), w))
      (Splane.weights weights)
  in
  {
    labeled;
    races = Lockset.candidates ls;
    suspects = Lockset.suspect_sids ls;
    planes;
    lints = Lint.run labeled;
    threshold_bytes;
  }

let races t = t.races
let suspect_sids t = t.suspects
let lints t = t.lints
let has_lint_errors t = Lint.errors t.lints <> []

let plane_map t = P.of_assoc (List.map (fun (f, p, _) -> (f, p)) t.planes)

let trigger t = Ddet_analysis.Trigger.of_sites ~name:"static-races" t.suspects

let trigger_selector ?(sticky = true) ?window t =
  Ddet_analysis.Trigger.selector ~sticky ?window [ trigger t ]

let site_selector t =
  let tbl = Hashtbl.create 16 in
  List.iter (fun sid -> Hashtbl.replace tbl sid ()) t.suspects;
  Ddet_record.Fidelity_level.by_site ~name:"static-sites" (fun sid ->
      if Hashtbl.mem tbl sid then Ddet_record.Fidelity_level.High
      else Ddet_record.Fidelity_level.Low)

let code_selector t =
  let map = plane_map t in
  Ddet_record.Fidelity_level.by_function ~name:"static-code" (fun fname ->
      match P.plane_of map fname with
      | P.Control -> Ddet_record.Fidelity_level.High
      | P.Data -> Ddet_record.Fidelity_level.Low)

let pp_site table ppf sid =
  match Label.site table sid with
  | { Label.fname; kind } -> Fmt.pf ppf "#%d (%s in %s)" sid kind fname
  | exception Not_found -> Fmt.pf ppf "#%d" sid

let pp ppf t =
  let table = t.labeled.Label.table in
  let name = t.labeled.Label.prog.Ast.name in
  Fmt.pf ppf "@[<v>== static analysis: %s ==@,@," name;
  Fmt.pf ppf "@[<v2>race candidates (%d):@," (List.length t.races);
  (match t.races with
  | [] -> Fmt.pf ppf "none"
  | rs ->
    Fmt.pf ppf "%a"
      (Fmt.list ~sep:Fmt.cut (fun ppf c -> Lockset.pp_candidate ppf c))
      rs);
  Fmt.pf ppf "@]@,@,";
  Fmt.pf ppf "@[<v2>plane map (threshold %dB):@," t.threshold_bytes;
  Fmt.pf ppf "%a"
    (Fmt.list ~sep:Fmt.cut (fun ppf (f, p, w) ->
         Fmt.pf ppf "%-14s %-7s (weight %dB)" f (P.to_string p) w))
    t.planes;
  Fmt.pf ppf "@]@,@,";
  Fmt.pf ppf "@[<v2>lint (%d error(s), %d warning(s)):@,"
    (List.length (Lint.errors t.lints))
    (List.length t.lints - List.length (Lint.errors t.lints));
  (match t.lints with
  | [] -> Fmt.pf ppf "clean"
  | fs -> Fmt.pf ppf "%a" (Fmt.list ~sep:Fmt.cut Lint.pp_finding) fs);
  Fmt.pf ppf "@]@,";
  if t.suspects <> [] then
    Fmt.pf ppf "@,suspect sites: %a@,"
      (Fmt.list ~sep:Fmt.comma (pp_site table))
      t.suspects
