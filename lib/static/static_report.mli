(** The aggregate static-analysis report: lockset race candidates, the
    static plane map, and lint findings, plus the RCSE hooks derived from
    them (a suspect-site trigger, a training-free code selector). *)

open Mvm
module P = Ddet_analysis.Plane

type t

val analyze : ?threshold_bytes:int -> Label.labeled -> t

val races : t -> Lockset.candidate list

(** Sorted, deduplicated sids of all race-candidate sites. *)
val suspect_sids : t -> int list

val lints : t -> Lint.finding list
val has_lint_errors : t -> bool

(** (fname, plane, site weight in bytes), sorted by name. *)
val plane_map : t -> P.map

(** Fires on shared reads/writes at suspect sites — plug into
    {!Ddet_analysis.Trigger.selector} or combine with dynamic triggers. *)
val trigger : t -> Ddet_analysis.Trigger.t

(** The suspect-site trigger as a ready selector (sticky by default:
    "increase determinism guarantees onward from the point of
    detection"). *)
val trigger_selector :
  ?sticky:bool -> ?window:int -> t -> Ddet_record.Fidelity_level.selector

(** The site-granular selector: high fidelity exactly at suspect-site
    events and nothing anywhere else — the cheapest static configuration,
    recording just enough interleaving to pin the order of the racing
    accesses. *)
val site_selector : t -> Ddet_record.Fidelity_level.selector

(** The static code-based selector: high fidelity in statically
    control-plane functions, no training runs. *)
val code_selector : t -> Ddet_record.Fidelity_level.selector

(** The full human-readable report (races, planes, lints, suspects). *)
val pp : Format.formatter -> t -> unit
