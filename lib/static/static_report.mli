(** The aggregate static-analysis report: lockset race candidates, the
    static plane map, and lint findings, plus the RCSE hooks derived from
    them (a suspect-site trigger, a training-free code selector).

    With a node map ([analyze ~nodes]) the report goes distributed: race
    candidates are tightened by the node-aware {!Mhp} relation, the
    {!Commlint} communication rules join the findings, and a per-node
    view (threads, suspect sites, channels, outgoing may-send edges)
    feeds per-node recording selectors, shard write priority, and the
    partial-evidence steering hints. *)

open Mvm
module P = Ddet_analysis.Plane

type t

(** One node's slice of the analysis. *)
type node_view = {
  node : string;
  tids : int list;  (** static thread ids hosted here *)
  fnames : string list;  (** functions this node's threads may execute *)
  suspects : int list;  (** race-suspect sids in those functions *)
  channels : string list;  (** channels with a site on this node *)
  edges_out : Msgflow.edge list;  (** cross-node may-send edges leaving *)
}

(** [analyze ?threshold_bytes ?nodes labeled]. When [nodes] is given the
    lockset pass runs against {!Mhp.concurrent} (placement-refined, so
    the candidate set only shrinks), {!Commlint.run} findings are
    appended to the lints, and the per-node views are populated.

    @raise Invalid_argument when [nodes] is given and a thread root has
    no node assignment. *)
val analyze : ?threshold_bytes:int -> ?nodes:Node.map -> Label.labeled -> t

val races : t -> Lockset.candidate list

(** Sorted, deduplicated sids of all race-candidate sites. *)
val suspect_sids : t -> int list

val lints : t -> Lint.finding list
val has_lint_errors : t -> bool

(** The channel-communication graph; [None] without [~nodes]. *)
val msgflow : t -> Msgflow.t option

(** The node-aware MHP relation; [None] without [~nodes]. *)
val mhp : t -> Mhp.t option

(** Per-node views in node declaration order; empty without [~nodes]. *)
val node_views : t -> node_view list

(** (fname, plane, site weight in bytes), sorted by name. *)
val plane_map : t -> P.map

(** Fires on shared reads/writes at suspect sites — plug into
    {!Ddet_analysis.Trigger.selector} or combine with dynamic triggers. *)
val trigger : t -> Ddet_analysis.Trigger.t

(** The suspect-site trigger as a ready selector (sticky by default:
    "increase determinism guarantees onward from the point of
    detection"). *)
val trigger_selector :
  ?sticky:bool -> ?window:int -> t -> Ddet_record.Fidelity_level.selector

(** The site-granular selector: high fidelity exactly at suspect-site
    events and nothing anywhere else — the cheapest static configuration,
    recording just enough interleaving to pin the order of the racing
    accesses. *)
val site_selector : t -> Ddet_record.Fidelity_level.selector

(** [node_site_selector t ~node]: the {!site_selector} restricted to the
    suspect sites that can execute on [node] — what that node's recorder
    should run, cheaper than the global selector whenever the races
    cluster elsewhere. Selects nothing for an unknown node or without
    [~nodes]. *)
val node_site_selector : t -> node:string -> Ddet_record.Fidelity_level.selector

(** The static code-based selector: high fidelity in statically
    control-plane functions, no training runs. *)
val code_selector : t -> Ddet_record.Fidelity_level.selector

(** Shard write order for {!Ddet_record.Sharded_log.save_via}: nodes
    carrying more suspect sites first (map order breaks ties), so under
    a hostile store the most diagnostic shard has the fewest writes in
    front of it. Empty without [~nodes]. *)
val shard_priority : t -> string list

(** Static steering hints for partial-evidence replay after losing
    nodes. *)
type steer_hint = {
  lost_tids : int list;  (** tids of all lost-node threads *)
  hot_sids : int list;
      (** lost-node decision points worth searching: sends on channels
          that may still land on a survivor, plus race-suspect sites *)
  cold_input_tids : int list;
      (** lost threads on nodes with no static path to any survivor —
          their inputs provably never influenced surviving evidence, so
          the search pins them instead of enumerating *)
}

(** [steer t ~lost] derives the hints from the {!Msgflow} reachability
    closure. All-empty without [~nodes]. *)
val steer : t -> lost:string list -> steer_hint

(** The whole report as one JSON object: program, races, suspect sids,
    planes, lints, per-node views ([nodes] is [[]] without [~nodes]). *)
val to_json : t -> string

(** The full human-readable report (races, planes, lints, suspects, and
    the per-node section when distributed). *)
val pp : Format.formatter -> t -> unit
