(** Static control/data-plane classification (§3.1.1 without training
    runs).

    Propagates taint {e weights} — the largest number of input-derived
    bytes a value can carry — from [Input] statements through assignments,
    shared regions, message channels and calls to a fixpoint, then
    classifies each function by the heaviest weight crossing any of its
    event-emitting sites. Functions strictly above [threshold_bytes] are
    data-plane; ties and unknown functions fall back to Control, matching
    the dynamic {!Ddet_analysis.Plane.classify} tie-breaking. *)

open Mvm

type weights

(** 32 bytes: above every scalar (ints are 8 bytes) and below any real
    payload (the workloads move 128-256 byte blocks). *)
val default_threshold : int

val analyze : ?threshold_bytes:int -> Ast.program -> weights

(** Per-function site weight in bytes, sorted by name. *)
val weights : weights -> (string * int) list

val classify : ?threshold_bytes:int -> Ast.program -> Ddet_analysis.Plane.map

(** The RCSE code-based selector derived purely statically: high fidelity
    exactly in (statically) control-plane functions. Named
    ["static-code"]. *)
val selector :
  ?threshold_bytes:int -> Ast.program -> Ddet_record.Fidelity_level.selector
