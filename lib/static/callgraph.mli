(** Shared call-graph and thread-reachability core for the static
    analyses.

    Resolves [Spawn] and [Call] statements of an {!Mvm.Ast.program} into
    per-thread-entry reachable function sets, extracts every shared-region
    access site, and computes two sound refinements used by the lockset
    race analysis: thread-entry {e multiplicity} (can two instances of the
    same entry run at once?) and the {e prologue} of [main] (sites that
    execute before any other thread can exist). *)

open Mvm

module SS : Set.S with type elt = string

(** [Single] means at most one live thread instance runs this entry;
    [Many] is the sound default. *)
type multiplicity = Single | Many

type entry = { entry : string; mult : multiplicity }

(** Static array-index abstraction: distinct constant indices never alias. *)
type idx = No_index | Const_idx of int | Var_idx

(** A shared-region access site (one statement may contain several). *)
type access = {
  sid : int;
  fname : string;
  region : string;
  index : idx;
  write : bool;
}

type t

(** [build labeled] analyses the program once; all queries are O(1)-ish
    lookups afterwards. *)
val build : Label.labeled -> t

(** The program the graph was built from. *)
val labeled : t -> Label.labeled

(** Thread entries: [main] plus every spawn target, each with its
    multiplicity. *)
val entries : t -> entry list

(** Functions reachable from [entry] through [Call] edges (including the
    entry itself; spawn targets are separate entries, not callees). *)
val reachable : t -> string -> SS.t

(** The entries whose thread can be executing [fname]. *)
val entries_reaching : t -> string -> entry list

(** Every shared-region read/write site in the program. [Arr_len] is not
    an access (the interpreter emits no Read event for it). *)
val accesses : t -> access list

(** Sites in [main]'s leading statements that run before the first
    possible spawn — single-threaded by construction. *)
val prologue_sids : t -> int list

val in_prologue : t -> int -> bool

(** [concurrent t a b] holds when sites [a] and [b] can execute in two
    distinct live threads: reachable from different entries, or from one
    multi-instance entry, and neither in [main]'s prologue. *)
val concurrent : t -> access -> access -> bool

val pp_access : Format.formatter -> access -> unit
