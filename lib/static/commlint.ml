open Mvm
module SS = Callgraph.SS

(* Node-aware communication lint over the Msgflow graph. Three rules,
   all reported as ordinary Lint findings so Static_report can splice
   them into the one findings stream:

   - comm-orphan-send [Warning]: a channel someone sends on but nobody
     anywhere can receive — the message is silently lost;
   - comm-unreachable-sender [Error]: a blocking recv whose only
     possible senders are sequenced after it in its own thread — the
     thread waits for a message only its own future could produce;
   - comm-deadlock [Error]: a cross-node wait cycle — every node in a
     set blocks on a receive before sending anything, and every
     possible sender of what it waits for is in the same set. No
     message can ever enter the cycle, so the nodes are statically
     wedged.

   The deadlock rule is a must-analysis: a node only qualifies when its
   sole thread unconditionally reaches the blocking receive (top-level
   statement, not in a loop) having provably sent nothing first (no
   send site — in the root or any callee — sequenced before it). That
   keeps request/response protocols clean: a client that sends its
   request before blocking on the reply has produced something, so it
   breaks any would-be cycle through the server. *)

let finding severity ~sid ~fname rule msg =
  { Lint.severity; sid = Some sid; fname = Some fname; rule; msg }

(* the node's one thread blocks at this top-level receive having sent
   nothing on any channel first: (recv site, channel) *)
let first_blocking_wait flow graph root =
  let labeled = Callgraph.labeled graph in
  let body =
    match Ast.find_func labeled.Label.prog root with
    | Some f -> f.Ast.body
    | None -> []
  in
  (* sends anywhere in the thread's call tree that are NOT in the root
     body itself make "sent nothing yet" undecidable here: bail *)
  let reach = Callgraph.reachable graph root in
  let callee_sends =
    List.exists
      (fun (s : Msgflow.site) ->
        s.Msgflow.kind = Msgflow.Send
        && s.Msgflow.fname <> root
        && SS.mem s.Msgflow.fname reach)
      (Msgflow.sites flow)
  in
  if callee_sends then None
  else
    let root_send_sids =
      List.filter_map
        (fun (s : Msgflow.site) ->
          if s.Msgflow.kind = Msgflow.Send && s.Msgflow.fname = root then
            Some s.Msgflow.sid
          else None)
        (Msgflow.sites flow)
    in
    List.find_map
      (fun (s : Ast.stmt) ->
        match s.Ast.node with
        | Ast.Recv (_, c) ->
          if
            List.for_all
              (fun send ->
                not (Msgflow.precedes flow ~fname:root send s.Ast.sid))
              root_send_sids
          then Some (s.Ast.sid, c)
          else None
        | _ -> None)
      body

let run ~map (labeled : Label.labeled) =
  let graph = Callgraph.build labeled in
  let flow = Msgflow.analyze ~map labeled in
  let out = ref [] in
  let add f = out := f :: !out in
  (* --- comm-orphan-send ------------------------------------------- *)
  List.iter
    (fun c ->
      if Msgflow.receivers flow c = [] then
        List.iter
          (fun (s : Msgflow.site) ->
            add
              (finding Lint.Warning ~sid:s.Msgflow.sid ~fname:s.Msgflow.fname
                 "comm-orphan-send"
                 (Printf.sprintf
                    "send on %s: no node has a receive site for it" c)))
          (Msgflow.senders flow c))
    (Msgflow.channels flow);
  (* --- comm-unreachable-sender ------------------------------------ *)
  let sole_single fname =
    match Callgraph.entries_reaching graph fname with
    | [ e ] -> e.Callgraph.mult = Callgraph.Single && e.Callgraph.entry = fname
    | _ -> false
  in
  List.iter
    (fun (r : Msgflow.site) ->
      match (r.Msgflow.kind, Msgflow.senders flow r.Msgflow.chan) with
      | Msgflow.Recv, (_ :: _ as senders)
        when sole_single r.Msgflow.fname
             && not (Msgflow.in_loop flow r.Msgflow.sid) ->
        let own_and_later (s : Msgflow.site) =
          s.Msgflow.fname = r.Msgflow.fname
          && not
               (Msgflow.precedes flow ~fname:r.Msgflow.fname s.Msgflow.sid
                  r.Msgflow.sid)
        in
        if List.for_all own_and_later senders then
          add
            (finding Lint.Error ~sid:r.Msgflow.sid ~fname:r.Msgflow.fname
               "comm-unreachable-sender"
               (Printf.sprintf
                  "recv on %s blocks before its only senders (this thread's \
                   own, sequenced after it) could run"
                  r.Msgflow.chan))
      | _ -> ())
    (Msgflow.sites flow);
  (* --- comm-deadlock ---------------------------------------------- *)
  let single_root node =
    let hosted =
      List.filter
        (fun (e : Callgraph.entry) ->
          Node.node_of_fname map e.Callgraph.entry = Some node)
        (Callgraph.entries graph)
    in
    match hosted with
    | [ e ] when e.Callgraph.mult = Callgraph.Single -> Some e.Callgraph.entry
    | _ -> None
  in
  let waits =
    List.filter_map
      (fun node ->
        match single_root node with
        | None -> None
        | Some root ->
          Option.map
            (fun (sid, chan) -> (node, root, sid, chan))
            (first_blocking_wait flow graph root))
      (Node.nodes map)
  in
  let sender_nodes chan =
    List.concat_map (fun (s : Msgflow.site) -> s.Msgflow.nodes)
      (Msgflow.senders flow chan)
    |> List.sort_uniq compare
  in
  let stuck = ref (List.map (fun (n, _, _, _) -> n) waits) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (node, _, _, chan) ->
        if List.mem node !stuck then
          let senders = sender_nodes chan in
          if
            senders = []
            || List.exists (fun s -> not (List.mem s !stuck)) senders
          then begin
            (* an empty sender set is the plain linter's recv-never-sent;
               a free sender can eventually feed the cycle *)
            stuck := List.filter (fun n -> n <> node) !stuck;
            changed := true
          end)
      waits
  done;
  List.iter
    (fun (node, root, sid, chan) ->
      if List.mem node !stuck then
        add
          (finding Lint.Error ~sid ~fname:root "comm-deadlock"
             (Printf.sprintf
                "node %s blocks on %s before sending anything; every sender \
                 (%s) is wedged the same way — static cross-node wait cycle"
                node chan
                (String.concat ", " (sender_nodes chan)))))
    waits;
  List.rev !out

let has_deadlock findings =
  List.exists (fun (f : Lint.finding) -> f.Lint.rule = "comm-deadlock") findings
