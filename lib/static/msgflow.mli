(** The static channel-communication graph of a node-mapped program.

    Computed from the {!Mvm.Ast.program} and its {!Mvm.Node.map} alone —
    no runs: every [Send]/[Recv]/[Try_recv] site, the nodes whose
    threads may execute it (reachability through [Call] edges, both
    branches of conditionals), and the per-channel may-send → may-recv
    node-pair edges those placements imply. The edge set is a sound
    over-approximation of dynamic cross-node causality: every
    {!Ddet_record.Causal.edge} a recording can observe on channel [c]
    from node [a] to node [b] has a matching static edge, because the
    dynamic sender/receiver sites are among the static may-sites and
    their thread's node is among the site's may-nodes. The converse does
    not hold — a static edge may never materialise — which is exactly
    what makes "no static path to a survivor" a proof that a lost node's
    channel never influenced the surviving evidence. *)

open Mvm

type kind = Send | Recv | Try_recv

(** A communication site. [nodes] is every node whose threads can reach
    the site (sorted); empty for dead code no thread root reaches. *)
type site = {
  sid : int;
  fname : string;
  chan : string;
  kind : kind;
  nodes : string list;
}

(** One may-flow: some thread on [from_node] may send on [chan] and some
    thread on [to_node] may receive it. *)
type edge = { chan : string; from_node : string; to_node : string }

type t

val kind_name : kind -> string

(** [analyze ~map labeled] builds the graph.

    @raise Invalid_argument when a thread root has no node assignment. *)
val analyze : map:Node.map -> Label.labeled -> t

(** All communication sites, sorted by (channel, sid). *)
val sites : t -> site list

(** Channel names in use, sorted. *)
val channels : t -> string list

(** May-send sites of a channel. *)
val senders : t -> string -> site list

(** May-receive sites of a channel ([Recv] and [Try_recv]). *)
val receivers : t -> string -> site list

(** Every (channel, sender-node, receiver-node) triple, including
    same-node pairs; sorted and deduplicated. *)
val edges : t -> edge list

(** The edges whose endpoints differ — the cross-node over-approximation
    the soundness law quantifies over. *)
val cross_edges : t -> edge list

val has_edge : t -> chan:string -> from_node:string -> to_node:string -> bool

(** [reaches t a b]: a nonempty path of cross-node edges leads from node
    [a] to node [b] (channel-agnostic transitive closure: a message into
    a node may influence anything it later sends). False for [a = b]
    unless [a] sits on a cycle. *)
val reaches : t -> string -> string -> bool

(** Channels with a site on the given node, sorted. *)
val node_channels : t -> string -> string list

(** [hot_channels t ~lost ~survivors] — channels on which a lost node
    may send a message that lands on a survivor or on a node that can
    still forward to one. These are the channels whose schedule and
    payload are worth searching when the lost evidence is reconstructed;
    everything else provably never influenced a survivor. *)
val hot_channels : t -> lost:string list -> survivors:string list -> string list

(** [precedes t ~fname a b]: within [fname]'s body, statement [a]
    structurally must-precede statement [b] — whenever both execute, every
    occurrence of [a] starts before [b] does, provided [b] is not inside
    a loop (guard with {!in_loop}; two sites sharing a loop are unordered
    across iterations). Sibling conditional branches are unordered. *)
val precedes : t -> fname:string -> int -> int -> bool

(** The site sits inside a [While] body. *)
val in_loop : t -> int -> bool

val pp : Format.formatter -> t -> unit
