open Mvm
open Mvm.Ast
module IS = Set.Make (Int)
module SS = Callgraph.SS

(* The channel-communication graph: which sites send/receive on which
   channels, which nodes those sites may run on, and the node-pair edges
   a message on each channel may create. Everything is a may-analysis
   over the static structure (reachability through Call edges, both
   branches of conditionals), so the edge set over-approximates any
   dynamic cross-node causal edge the Causal monitor can observe — the
   soundness direction partial-evidence steering needs: a channel with
   no static path to a survivor provably never influenced one. *)

type kind = Send | Recv | Try_recv

type site = {
  sid : int;
  fname : string;
  chan : string;
  kind : kind;
  nodes : string list;  (** nodes whose threads may execute this site *)
}

type edge = { chan : string; from_node : string; to_node : string }

type t = {
  map : Node.map;
  labeled : Label.labeled;
  sites : site list;
  edges : edge list;
  cross : edge list;
  reach : (string, SS.t) Hashtbl.t;  (* node -> nodes reachable via cross edges *)
  before : (string, (int, IS.t) Hashtbl.t) Hashtbl.t;
  loops : IS.t;
}

let kind_name = function Send -> "send" | Recv -> "recv" | Try_recv -> "try_recv"

(* Structural must-precede within one function body. [before(sid)] holds
   every sid whose statement, when it executes at all, has started before
   [sid]'s statement starts: earlier statements of the same block
   (including everything nested in them) and every enclosing statement.
   Sibling branches of one conditional are NOT in each other's before
   set (they never co-execute), and a loop body is only "before" what
   follows the loop — two sids inside one loop stay unordered across
   iterations, which [precedes] callers guard with [in_loop]. *)
let before_of_body body =
  let tbl : (int, IS.t) Hashtbl.t = Hashtbl.create 32 in
  let rec sids_of (s : stmt) acc =
    let acc = IS.add s.sid acc in
    match s.node with
    | If (_, a, b) -> List.fold_right sids_of a (List.fold_right sids_of b acc)
    | While (_, b) | Atomic b -> List.fold_right sids_of b acc
    | _ -> acc
  in
  let rec walk pre block =
    List.fold_left
      (fun pre (s : stmt) ->
        Hashtbl.replace tbl s.sid pre;
        let inner = IS.add s.sid pre in
        (match s.node with
        | If (_, a, b) ->
          ignore (walk inner a);
          ignore (walk inner b)
        | While (_, b) | Atomic b -> ignore (walk inner b)
        | _ -> ());
        IS.union pre (sids_of s IS.empty))
      pre block
  in
  ignore (walk IS.empty body);
  tbl

let loops_of prog =
  let acc = ref IS.empty in
  let rec stmt in_loop (s : stmt) =
    if in_loop then acc := IS.add s.sid !acc;
    match s.node with
    | If (_, a, b) ->
      List.iter (stmt in_loop) a;
      List.iter (stmt in_loop) b
    | While (_, b) -> List.iter (stmt true) b
    | Atomic b -> List.iter (stmt in_loop) b
    | _ -> ()
  in
  List.iter (fun (f : func) -> List.iter (stmt false) f.body) prog.funcs;
  !acc

let analyze ~map (labeled : Label.labeled) =
  let prog = labeled.Label.prog in
  let fname_nodes = Node.fname_nodes map prog in
  let nodes_of fname =
    Option.value ~default:[] (List.assoc_opt fname fname_nodes)
  in
  let sites =
    fold_stmts
      (fun acc fname s ->
        let mk chan kind =
          { sid = s.sid; fname; chan; kind; nodes = nodes_of fname } :: acc
        in
        match s.node with
        | Ast.Send (c, _) -> mk c Send
        | Ast.Recv (_, c) -> mk c Recv
        | Ast.Try_recv (_, _, c) -> mk c Try_recv
        | _ -> acc)
      [] prog
    |> List.sort (fun (a : site) (b : site) ->
           compare (a.chan, a.sid) (b.chan, b.sid))
  in
  let chans =
    List.sort_uniq compare (List.map (fun (s : site) -> s.chan) sites)
  in
  let edges =
    List.concat_map
      (fun c ->
        let on k =
          List.concat_map
            (fun (s : site) -> if s.chan = c && k s.kind then s.nodes else [])
            sites
          |> List.sort_uniq compare
        in
        let send_nodes = on (fun k -> k = Send) in
        let recv_nodes = on (fun k -> k <> Send) in
        List.concat_map
          (fun f ->
            List.map (fun t -> { chan = c; from_node = f; to_node = t }) recv_nodes)
          send_nodes)
      chans
    |> List.sort_uniq compare
  in
  let cross = List.filter (fun e -> e.from_node <> e.to_node) edges in
  (* transitive closure of the cross-node edges, channel-agnostic: a
     message into node n can influence anything n later sends *)
  let reach : (string, SS.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun n ->
      Hashtbl.replace reach n
        (SS.of_list
           (List.filter_map
              (fun e -> if e.from_node = n then Some e.to_node else None)
              cross)))
    (Node.nodes map);
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        let cur = Hashtbl.find reach n in
        let nxt =
          SS.fold
            (fun m acc ->
              SS.union acc
                (Option.value ~default:SS.empty (Hashtbl.find_opt reach m)))
            cur cur
        in
        if not (SS.equal cur nxt) then begin
          Hashtbl.replace reach n nxt;
          changed := true
        end)
      (Node.nodes map)
  done;
  let before = Hashtbl.create 16 in
  List.iter
    (fun (f : func) -> Hashtbl.replace before f.fname (before_of_body f.body))
    prog.funcs;
  { map; labeled; sites; edges; cross; reach; before; loops = loops_of prog }

let sites t = t.sites
let edges t = t.edges
let cross_edges t = t.cross

let channels t =
  List.sort_uniq compare (List.map (fun (s : site) -> s.chan) t.sites)

let senders t chan =
  List.filter (fun (s : site) -> s.chan = chan && s.kind = Send) t.sites

let receivers t chan =
  List.filter (fun (s : site) -> s.chan = chan && s.kind <> Send) t.sites

let has_edge t ~chan ~from_node ~to_node =
  List.exists
    (fun e -> e.chan = chan && e.from_node = from_node && e.to_node = to_node)
    t.edges

let reaches t a b =
  match Hashtbl.find_opt t.reach a with
  | Some set -> SS.mem b set
  | None -> false

let node_channels t node =
  List.filter_map
    (fun (s : site) -> if List.mem node s.nodes then Some s.chan else None)
    t.sites
  |> List.sort_uniq compare

let hot_channels t ~lost ~survivors =
  let lands_on_survivor_path recv_node =
    List.exists (fun s -> recv_node = s || reaches t recv_node s) survivors
  in
  List.filter
    (fun c ->
      List.exists (fun (s : site) -> List.exists (fun n -> List.mem n lost) s.nodes)
        (senders t c)
      && List.exists
           (fun (s : site) -> List.exists lands_on_survivor_path s.nodes)
           (receivers t c))
    (channels t)

let precedes t ~fname a b =
  match Hashtbl.find_opt t.before fname with
  | None -> false
  | Some tbl -> (
    match Hashtbl.find_opt tbl b with
    | Some set -> IS.mem a set
    | None -> false)

let in_loop t sid = IS.mem sid t.loops

let pp ppf t =
  Fmt.pf ppf "@[<v>channels:@,";
  List.iter
    (fun c ->
      let names k = String.concat "," (List.map (fun (s : site) -> Printf.sprintf "#%d" s.sid) (k t c)) in
      Fmt.pf ppf "  %-10s send {%s} recv {%s}@," c (names senders) (names receivers))
    (channels t);
  Fmt.pf ppf "cross-node edges:@,";
  List.iter
    (fun e -> Fmt.pf ppf "  %s: %s -> %s@," e.chan e.from_node e.to_node)
    t.cross;
  Fmt.pf ppf "@]"
