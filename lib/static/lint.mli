(** An MVM program linter with site-accurate diagnostics.

    Rules (severity in brackets):
    - [double-lock] — relocking a mutex already held on every path is a
      guaranteed interpreter crash [Error]; held only on some path
      [Warning].
    - [unlock-not-held] — unlocking a mutex held on no path [Error]; held
      only on some path [Warning].
    - [lock-imbalance] — a function exit (fallthrough or [return]) still
      holding locks it acquired [Error].
    - [branch-locks] — [if] branches exit with different held-lock sets
      [Warning].
    - [loop-locks] — a loop body's net lock effect is not empty, so the
      second iteration relocks or over-unlocks [Error].
    - [atomic-blocking] — [recv]/[lock]/[spawn]/[call]/[return] inside
      [atomic], which the interpreter forbids (crash) [Error].
    - [unreachable] — statements after [return]/[fail] in a block
      [Warning].
    - [undeclared-region] / [undeclared-function] / [undeclared-channel] /
      [region-kind] / [arity] — references that crash at runtime (or are
      rejected by {!Mvm.Label.program}) [Error].
    - [index-range] — constant array index out of declared bounds [Error].
    - [recv-never-sent] — a blocking [recv] on a channel no [send] ever
      fills is a guaranteed deadlock [Error]; a [try_recv] that can only
      miss [Warning]. *)

open Mvm

type severity = Error | Warning

type finding = {
  severity : severity;
  sid : int option;
  fname : string option;
  rule : string;
  msg : string;
}

val severity_name : severity -> string
val pp_finding : Format.formatter -> finding -> unit

(** Only the [Error]-severity findings (the CI gate and the [analyze]
    exit code ignore warnings). *)
val errors : finding list -> finding list

(** Findings in program order. *)
val run : Label.labeled -> finding list
