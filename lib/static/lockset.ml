open Mvm
open Mvm.Ast
module SS = Callgraph.SS

(* Must-held locksets, Eraser-style but interprocedural and path-meeting.

   The analysis under-approximates the set of locks held at every site:
   joins meet with set intersection, a callee's entry lockset is the meet
   over all its call contexts, and a call conservatively drops any lock
   the callee's closure might release. Under-approximating locksets
   over-approximates races — the direction the soundness law needs: if
   two sites share a must-held lock, the dynamic happens-before detector
   can never report them (the lock's release->acquire edge orders them),
   so excluding only such pairs can never lose a dynamic race.

   Atomic blocks are deliberately NOT a pseudo-lock: the happens-before
   detector knows nothing about atomicity and does report conflicting
   accesses inside two atomic sections, so suppressing them statically
   would be unsound with respect to it.

   A lockset of [None] means "not reached yet" (top of the lattice), so
   dead code after a [Return] never drags a join down. *)

type candidate = {
  region : string;
  a : Callgraph.access;
  b : Callgraph.access;
  locks_a : string list;
  locks_b : string list;
}

type result = {
  graph : Callgraph.t;
  locksets : (int, SS.t) Hashtbl.t;
  candidates : candidate list;
}

let meet a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (SS.inter a b)

let opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> SS.equal a b
  | _ -> false

let analyze ?mhp graph =
  let conc =
    match mhp with
    | None -> Callgraph.concurrent graph
    | Some m -> Mhp.concurrent m
  in
  let labeled = Callgraph.labeled graph in
  let prog = labeled.Label.prog in
  (* locks each function's body releases, for the call-effect summary *)
  let unlocks_direct : (string, SS.t) Hashtbl.t = Hashtbl.create 16 in
  fold_stmts
    (fun () fname s ->
      match s.node with
      | Unlock m ->
        Hashtbl.replace unlocks_direct fname
          (SS.add m
             (Option.value ~default:SS.empty
                (Hashtbl.find_opt unlocks_direct fname)))
      | _ -> ())
    () prog;
  let may_unlock fn =
    SS.fold
      (fun g acc ->
        SS.union acc
          (Option.value ~default:SS.empty (Hashtbl.find_opt unlocks_direct g)))
      (Callgraph.reachable graph fn)
      SS.empty
  in
  (* thread entries start with no locks held: a spawned thread inherits
     nothing (mutex ownership is per-thread in the interpreter) *)
  let entry_ls : (string, SS.t option) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (f : func) -> Hashtbl.replace entry_ls f.fname None) prog.funcs;
  List.iter
    (fun (e : Callgraph.entry) ->
      Hashtbl.replace entry_ls e.Callgraph.entry (Some SS.empty))
    (Callgraph.entries graph);
  let changed = ref true in
  let propagate fn ls =
    match ls with
    | None -> ()
    | Some _ -> (
      match Hashtbl.find_opt entry_ls fn with
      | None -> ()
      | Some old ->
        let nxt = meet old ls in
        if not (opt_equal old nxt) then (
          Hashtbl.replace entry_ls fn nxt;
          changed := true))
  in
  let noop _sid _ls = () in
  let rec walk record ls block = List.fold_left (step record) ls block
  and step record ls (s : stmt) =
    (match ls with Some l -> record s.sid l | None -> ());
    match s.node with
    | Lock m -> Option.map (SS.add m) ls
    | Unlock m -> Option.map (SS.remove m) ls
    | Return _ | Fail _ -> None
    | If (_, b1, b2) -> meet (walk record ls b1) (walk record ls b2)
    | While (_, b) ->
      (* loop invariant: meet of the entry lockset with the body's exit,
         iterated to a fixpoint (locksets only shrink, so it terminates) *)
      let rec fix cur =
        let out = walk noop cur b in
        let nxt = meet cur out in
        if opt_equal nxt cur then cur else fix nxt
      in
      let inv = fix ls in
      (match inv with Some l -> record s.sid l | None -> ());
      ignore (walk record inv b);
      inv
    | Atomic b -> walk record ls b
    | Call (_, fn, _) ->
      propagate fn ls;
      Option.map (fun l -> SS.diff l (may_unlock fn)) ls
    | Skip | Assign _ | Store _ | Store_scalar _ | Input _ | Output _ | Send _
    | Recv _ | Try_recv _ | Spawn _ | Assert _ | Yield ->
      ls
  in
  (* phase 1: fixpoint on entry locksets *)
  while !changed do
    changed := false;
    List.iter
      (fun (f : func) ->
        match Hashtbl.find_opt entry_ls f.fname with
        | Some (Some _ as ls) -> ignore (walk noop ls f.body)
        | _ -> ())
      prog.funcs
  done;
  (* phase 2: one recording pass at the stable entry locksets *)
  let locksets : (int, SS.t) Hashtbl.t = Hashtbl.create 64 in
  let record sid l =
    match Hashtbl.find_opt locksets sid with
    | None -> Hashtbl.replace locksets sid l
    | Some prev -> Hashtbl.replace locksets sid (SS.inter prev l)
  in
  List.iter
    (fun (f : func) ->
      match Hashtbl.find_opt entry_ls f.fname with
      | Some (Some _ as ls) -> ignore (walk record ls f.body)
      | _ -> ())
    prog.funcs;
  (* pair up the accesses *)
  let index_compatible (a : Callgraph.access) (b : Callgraph.access) =
    match (a.Callgraph.index, b.Callgraph.index) with
    | Callgraph.Const_idx x, Callgraph.Const_idx y -> x = y
    | _ -> true
  in
  let accs =
    Array.of_list
      (List.filter
         (fun (a : Callgraph.access) -> Hashtbl.mem locksets a.Callgraph.sid)
         (Callgraph.accesses graph))
  in
  let seen = Hashtbl.create 32 in
  let cands = ref [] in
  let n = Array.length accs in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let a = accs.(i) and b = accs.(j) in
      if
        String.equal a.Callgraph.region b.Callgraph.region
        && (a.Callgraph.write || b.Callgraph.write)
        && (i <> j || a.Callgraph.write)
        && index_compatible a b
        && conc a b
      then begin
        let la = Hashtbl.find locksets a.Callgraph.sid in
        let lb = Hashtbl.find locksets b.Callgraph.sid in
        if SS.is_empty (SS.inter la lb) then begin
          let key =
            ( a.Callgraph.region,
              min a.Callgraph.sid b.Callgraph.sid,
              max a.Callgraph.sid b.Callgraph.sid )
          in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            cands :=
              {
                region = a.Callgraph.region;
                a;
                b;
                locks_a = SS.elements la;
                locks_b = SS.elements lb;
              }
              :: !cands
          end
        end
      end
    done
  done;
  let candidates =
    List.sort
      (fun c1 c2 ->
        compare
          (c1.region, c1.a.Callgraph.sid, c1.b.Callgraph.sid)
          (c2.region, c2.a.Callgraph.sid, c2.b.Callgraph.sid))
      !cands
  in
  { graph; locksets; candidates }

let candidates r = r.candidates

let suspect_sids r =
  List.sort_uniq compare
    (List.concat_map
       (fun c -> [ c.a.Callgraph.sid; c.b.Callgraph.sid ])
       r.candidates)

let lockset_at r sid =
  Option.map SS.elements (Hashtbl.find_opt r.locksets sid)

let pp_candidate ppf c =
  let locks = function
    | [] -> "{}"
    | ls -> "{" ^ String.concat "," ls ^ "}"
  in
  Fmt.pf ppf "@[race %s: %a %s  ~  %a %s@]" c.region Callgraph.pp_access c.a
    (locks c.locks_a) Callgraph.pp_access c.b (locks c.locks_b)
