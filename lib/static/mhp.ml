open Mvm

(* Node-aware may-happen-in-parallel. Callgraph.concurrent knows threads
   and multiplicity; this refines it with deployment placement:

   - two sites that can only run on one single-threaded node share a
     thread, so they never overlap (subsumed by Callgraph's same-entry
     rule today, but stated independently so the placement argument does
     not depend on how entries are computed);

   - a channel with exactly one once-executed send site and one
     once-executed blocking receive site (and no competing try_recv)
     carries exactly one FIFO-matched message, so the send
     happens-before the receive in every execution — and with it,
     everything sequenced before the send happens-before everything
     sequenced after the receive. That is the classic message-passing
     happens-before the dynamic Hb detector also honours, which keeps
     the refinement sound with respect to it: a pair Mhp rules out can
     never be reported as a dynamic race.

   Everything else falls through to Callgraph.concurrent, so
   [concurrent t a b] implies [Callgraph.concurrent g a b] by
   construction — the subset law the qcheck suite pins. *)

(* One provable static happens-before through a channel: every
   occurrence of [send_sid] (in [send_fname]) precedes every occurrence
   of [recv_sid] (in [recv_fname]). *)
type fifo = {
  chan : string;
  send_fname : string;
  send_sid : int;
  recv_fname : string;
  recv_sid : int;
}

type t = {
  graph : Callgraph.t;
  flow : Msgflow.t;
  fname_nodes : (string * string list) list;
  single_nodes : string list;  (* nodes hosting exactly one Single entry *)
  fifos : fifo list;
}

let sole_single_entry graph fname =
  match Callgraph.entries_reaching graph fname with
  | [ e ] when e.Callgraph.mult = Callgraph.Single && e.Callgraph.entry = fname ->
    true
  | _ -> false

let analyze ~map graph =
  let labeled = Callgraph.labeled graph in
  let prog = labeled.Label.prog in
  let flow = Msgflow.analyze ~map labeled in
  let fname_nodes = Node.fname_nodes map prog in
  let single_nodes =
    List.filter
      (fun n ->
        let hosted =
          List.filter
            (fun (e : Callgraph.entry) ->
              Node.node_of_fname map e.Callgraph.entry = Some n)
            (Callgraph.entries graph)
        in
        match hosted with
        | [ e ] -> e.Callgraph.mult = Callgraph.Single
        | _ -> false)
      (Node.nodes map)
  in
  (* a channel contributes a happens-before only when its one message is
     unambiguous: a unique send site and a unique blocking recv site,
     both executing at most once (thread-root code, Single entry, not in
     a loop), and no try_recv that could steal the message *)
  let fifos =
    List.filter_map
      (fun c ->
        let recvs = Msgflow.receivers flow c in
        match (Msgflow.senders flow c, recvs) with
        | [ s ], [ r ]
          when r.Msgflow.kind = Msgflow.Recv
               && sole_single_entry graph s.Msgflow.fname
               && sole_single_entry graph r.Msgflow.fname
               && s.Msgflow.fname <> r.Msgflow.fname
               && (not (Msgflow.in_loop flow s.Msgflow.sid))
               && not (Msgflow.in_loop flow r.Msgflow.sid) ->
          Some
            {
              chan = c;
              send_fname = s.Msgflow.fname;
              send_sid = s.Msgflow.sid;
              recv_fname = r.Msgflow.fname;
              recv_sid = r.Msgflow.sid;
            }
        | _ -> None)
      (Msgflow.channels flow)
  in
  { graph; flow; fname_nodes; single_nodes; fifos }

let nodes_of_fname t fname =
  Option.value ~default:[] (List.assoc_opt fname t.fname_nodes)

let same_single_node t (a : Callgraph.access) (b : Callgraph.access) =
  match (nodes_of_fname t a.Callgraph.fname, nodes_of_fname t b.Callgraph.fname) with
  | [ na ], [ nb ] -> na = nb && List.mem na t.single_nodes
  | _ -> false

(* a happens-before b through some channel's one message: a is sequenced
   at/before the send in the sender's root, b at/after the receive in
   the receiver's root *)
let ordered t (a : Callgraph.access) (b : Callgraph.access) =
  List.exists
    (fun f ->
      a.Callgraph.fname = f.send_fname
      && b.Callgraph.fname = f.recv_fname
      && (a.Callgraph.sid = f.send_sid
         || Msgflow.precedes t.flow ~fname:f.send_fname a.Callgraph.sid f.send_sid)
      && (b.Callgraph.sid = f.recv_sid
         || Msgflow.precedes t.flow ~fname:f.recv_fname f.recv_sid b.Callgraph.sid))
    t.fifos

let concurrent t a b =
  Callgraph.concurrent t.graph a b
  && (not (same_single_node t a b))
  && (not (ordered t a b))
  && not (ordered t b a)

let fifos t =
  List.map (fun f -> (f.chan, (f.send_fname, f.send_sid), (f.recv_fname, f.recv_sid))) t.fifos

let pp ppf t =
  Fmt.pf ppf "@[<v>single-threaded nodes: %s@,fifo orderings:@,"
    (match t.single_nodes with [] -> "none" | ns -> String.concat ", " ns);
  List.iter
    (fun f ->
      Fmt.pf ppf "  %s: %s#%d -> %s#%d@," f.chan f.send_fname f.send_sid
        f.recv_fname f.recv_sid)
    t.fifos;
  Fmt.pf ppf "@]"
