open Mvm
open Mvm.Ast
module P = Ddet_analysis.Plane

(* Static control/data-plane classification: a taint-weight fixpoint with
   zero training runs.

   Every value is abstracted by the largest number of input-derived bytes
   it can carry: an [Input] on channel [ch] produces W(ch) = the maximum
   [Value.size_bytes] over ch's declared domain; weights propagate through
   assignments, shared regions, message channels, call arguments and
   returns with join = max; [Arr_len] drops taint and [Str_len] keeps it,
   mirroring the interpreter's dynamic taint rules. A function's weight is
   the largest weight crossing any of its event-emitting sites — the
   static analogue of the dynamic per-function data *rate* — and
   functions strictly above [threshold_bytes] are data-plane. The strict
   comparison matches [Plane.classify]: on a tie both classifiers fall
   back to Control, the conservative plane (control-plane code is what
   RCSE records precisely). *)

type weights = {
  funcs : (string * int) list;  (* per-function site weight, sorted *)
  threshold_bytes : int;
}

let default_threshold = 32

let input_weight prog ch =
  match domain_of prog ch with
  | None | Some [] -> 8
  | Some vs -> List.fold_left (fun w v -> max w (Value.size_bytes v)) 0 vs

let analyze ?(threshold_bytes = default_threshold) prog =
  (* join-semilattice state, all bottom (0) initially *)
  let vars : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
  let regions : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let chans : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let returns : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let changed = ref true in
  let get tbl k = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
  let joins tbl k w =
    if w > get tbl k then begin
      Hashtbl.replace tbl k w;
      changed := true
    end
  in
  let rec expr_w fname = function
    | Const _ | Arr_len _ -> 0
    | Var x -> get vars (fname, x)
    | Load_scalar r -> get regions r
    | Load (r, _) -> get regions r
    | Binop (_, a, b) -> max (expr_w fname a) (expr_w fname b)
    | Unop (_, e) -> expr_w fname e
  in
  let params_of fn =
    match find_func prog fn with Some f -> f.params | None -> []
  in
  let transfer fname (s : stmt) =
    match s.node with
    | Assign (x, e) -> joins vars (fname, x) (expr_w fname e)
    | Input (x, ch) -> joins vars (fname, x) (input_weight prog ch)
    | Store (r, _, e) | Store_scalar (r, e) -> joins regions r (expr_w fname e)
    | Send (ch, e) -> joins chans ch (expr_w fname e)
    | Recv (x, ch) -> joins vars (fname, x) (get chans ch)
    | Try_recv (_, x, ch) -> joins vars (fname, x) (get chans ch)
    | Return e -> joins returns fname (expr_w fname e)
    | Spawn (fn, args) | Call (_, fn, args) ->
      List.iteri
        (fun i p ->
          match List.nth_opt args i with
          | Some a -> joins vars (fn, p) (expr_w fname a)
          | None -> ())
        (params_of fn);
      (match s.node with
      | Call (Some x, fn, _) -> joins vars (fname, x) (get returns fn)
      | _ -> ())
    | Skip | Output _ | If _ | While _ | Lock _ | Unlock _ | Assert _ | Fail _
    | Yield | Atomic _ ->
      ()
  in
  while !changed do
    changed := false;
    fold_stmts (fun () fname s -> transfer fname s) () prog
  done;
  (* a function's weight: the heaviest value crossing any event-emitting
     site in it. [Input] counts the channel's full weight unconditionally
     (In events log whole values, not just tainted bytes). *)
  let site_w fname (s : stmt) =
    let reads e =
      (* weights of the Read events evaluating [e] emits *)
      let rec go acc = function
        | Const _ | Var _ | Arr_len _ -> acc
        | Load_scalar r -> max acc (get regions r)
        | Load (r, i) -> go (max acc (get regions r)) i
        | Binop (_, a, b) -> go (go acc a) b
        | Unop (_, e) -> go acc e
      in
      go 0 e
    in
    match s.node with
    | Input (_, ch) -> input_weight prog ch
    | Assign (_, e) | Assert (e, _) -> reads e
    | Output (_, e) | Send (_, e) -> max (reads e) (expr_w fname e)
    | Store (_, i, e) -> max (max (reads i) (reads e)) (expr_w fname e)
    | Store_scalar (_, e) -> max (reads e) (expr_w fname e)
    | Return e -> reads e
    | If (c, _, _) | While (c, _) -> reads c
    | Recv (_, ch) | Try_recv (_, _, ch) -> get chans ch
    | Spawn (_, args) | Call (_, _, args) ->
      List.fold_left (fun w a -> max w (reads a)) 0 args
    | Skip | Lock _ | Unlock _ | Fail _ | Yield | Atomic _ -> 0
  in
  let fw : (string, int) Hashtbl.t = Hashtbl.create 16 in
  fold_stmts
    (fun () fname s ->
      let w = site_w fname s in
      if w > get fw fname then Hashtbl.replace fw fname w)
    () prog;
  let funcs =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map (fun (f : func) -> (f.fname, get fw f.fname)) prog.funcs)
  in
  { funcs; threshold_bytes }

let weights w = w.funcs

let classify ?threshold_bytes prog =
  let w = analyze ?threshold_bytes prog in
  P.of_assoc
    (List.map
       (fun (fname, wt) ->
         (fname, if wt > w.threshold_bytes then P.Data else P.Control))
       w.funcs)

let selector ?threshold_bytes prog =
  let map = classify ?threshold_bytes prog in
  Ddet_record.Fidelity_level.by_function ~name:"static-code" (fun fname ->
      match P.plane_of map fname with
      | P.Control -> Ddet_record.Fidelity_level.High
      | P.Data -> Ddet_record.Fidelity_level.Low)
