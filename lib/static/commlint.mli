(** Node-aware static communication lint over the {!Msgflow} graph.

    Rules (reported as {!Lint.finding}s so they splice into the one
    findings stream):

    - [comm-orphan-send] — a send on a channel no node can receive; the
      message is silently lost [Warning].
    - [comm-unreachable-sender] — a blocking [recv] whose only possible
      senders are this same thread's own sends sequenced after it: the
      thread waits on its own future [Error].
    - [comm-deadlock] — a cross-node wait cycle: every node in a set
      blocks on a receive before sending anything, and every possible
      sender of the awaited channel is in the same set, so no message
      can ever enter the cycle [Error]. A must-analysis: nodes qualify
      only when their sole thread unconditionally blocks (top-level
      receive, nothing sent first anywhere in the call tree), which
      keeps send-then-wait request/response protocols clean. *)

open Mvm

(** @raise Invalid_argument when a thread root has no node assignment. *)
val run : map:Node.map -> Label.labeled -> Lint.finding list

(** Any [comm-deadlock] finding present? (The CLI's [analyze --nodes]
    exit-1 condition, alongside ordinary lint errors.) *)
val has_deadlock : Lint.finding list -> bool
