type value = Count of int | Ns of int64
type kind = B | E | I

type ev = {
  mutable kind : kind;
  mutable name : string;
  mutable ts : int64;
  mutable args : (string * value) list;
}

type counter = { cname : string; cell : int Atomic.t }

type t = {
  ring : ev array;
  cap : int;
  mutable head : int;  (* next slot to write *)
  mutable len : int;
  mutable dropped : int;
  mu : Mutex.t;  (* guards [tbl]; the ring is single-writer by contract *)
  tbl : (string, counter) Hashtbl.t;
}

let create ?(capacity = 65536) () =
  if capacity < 2 then invalid_arg "Tracer.create: capacity must be >= 2";
  {
    ring = Array.init capacity (fun _ -> { kind = I; name = ""; ts = 0L; args = [] });
    cap = capacity;
    head = 0;
    len = 0;
    dropped = 0;
    mu = Mutex.create ();
    tbl = Hashtbl.create 64;
  }

(* ------------------------------------------------------------------ *)
(* ambient installation: one ref read on the disabled path *)

let cur : t option ref = ref None
let set_current t = cur := t
let current () = !cur

let with_current t f =
  let prev = !cur in
  cur := Some t;
  Fun.protect ~finally:(fun () -> cur := prev) f

(* ------------------------------------------------------------------ *)
(* events: single-writer ring, overwrite-oldest on overflow *)

let emit t kind name args =
  let slot = t.ring.(t.head) in
  slot.kind <- kind;
  slot.name <- name;
  slot.ts <- Clock.now ();
  slot.args <- args;
  t.head <- (t.head + 1) mod t.cap;
  if t.len < t.cap then t.len <- t.len + 1 else t.dropped <- t.dropped + 1

let instant t ?(args = []) name = emit t I name args

let span t ?(args = []) name f =
  emit t B name args;
  match f () with
  | v ->
    emit t E name [];
    v
  | exception e ->
    emit t E name [ ("raised", Count 1) ];
    raise e

let instant_ ?args name =
  match !cur with None -> () | Some t -> instant t ?args name

let span_ ?args name f =
  match !cur with None -> f () | Some t -> span t ?args name f

(* ------------------------------------------------------------------ *)
(* counters: find-or-create under the mutex, bump lock-free *)

let counter t name =
  Mutex.lock t.mu;
  let c =
    match Hashtbl.find_opt t.tbl name with
    | Some c -> c
    | None ->
      let c = { cname = name; cell = Atomic.make 0 } in
      Hashtbl.replace t.tbl name c;
      c
  in
  Mutex.unlock t.mu;
  c

let handle name = Option.map (fun t -> counter t name) !cur
let bump h n = match h with None -> () | Some c -> ignore (Atomic.fetch_and_add c.cell n)
let count name n = bump (handle name) n

(* ------------------------------------------------------------------ *)
(* inspection *)

let length t = t.len
let dropped t = t.dropped

let events t =
  let first = (t.head - t.len + t.cap * 2) mod t.cap in
  List.init t.len (fun i -> t.ring.((first + i) mod t.cap))

let counters t =
  Mutex.lock t.mu;
  let l = Hashtbl.fold (fun n c acc -> (n, Atomic.get c.cell) :: acc) t.tbl [] in
  Mutex.unlock t.mu;
  List.sort (fun (a, _) (b, _) -> String.compare a b) l

type span_stat = { sname : string; calls : int; total_ns : int64 }

let profile t =
  let acc : (string, int * int64) Hashtbl.t = Hashtbl.create 16 in
  let stack = ref [] in
  List.iter
    (fun e ->
      match e.kind with
      | B -> stack := (e.name, e.ts) :: !stack
      | E -> (
        match !stack with
        | (n, t0) :: rest when String.equal n e.name ->
          stack := rest;
          let calls, tot =
            Option.value ~default:(0, 0L) (Hashtbl.find_opt acc n)
          in
          Hashtbl.replace acc n (calls + 1, Int64.add tot (Int64.sub e.ts t0))
        | _ -> () (* ring overflow ate the matching B: skip, stay honest *))
      | I -> ())
    (events t);
  Hashtbl.fold (fun n (calls, tot) l -> { sname = n; calls; total_ns = tot } :: l) acc []
  |> List.sort (fun a b -> String.compare a.sname b.sname)

(* ------------------------------------------------------------------ *)
(* exports *)

let ns_counter name =
  let l = String.length name in
  l >= 3 && String.equal (String.sub name (l - 3) 3) "_ns"

let render_masked t =
  let b = Buffer.create 4096 in
  let pv = function Count k -> string_of_int k | Ns _ -> "*" in
  List.iter
    (fun e ->
      Buffer.add_string b
        (match e.kind with B -> "B " | E -> "E " | I -> "I ");
      Buffer.add_string b e.name;
      List.iter
        (fun (k, v) ->
          Buffer.add_char b ' ';
          Buffer.add_string b k;
          Buffer.add_char b '=';
          Buffer.add_string b (pv v))
        e.args;
      Buffer.add_char b '\n')
    (events t);
  List.iter
    (fun (n, v) ->
      Buffer.add_string b "C ";
      Buffer.add_string b n;
      Buffer.add_char b ' ';
      Buffer.add_string b (if ns_counter n then "*" else string_of_int v);
      Buffer.add_char b '\n')
    (counters t);
  Buffer.add_string b (Printf.sprintf "dropped %d\n" t.dropped);
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json t =
  let evs = events t in
  let t0 = match evs with [] -> 0L | e :: _ -> e.ts in
  let us ts = Int64.to_float (Int64.sub ts t0) /. 1e3 in
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n "
  in
  let arg_json (k, v) =
    Printf.sprintf "\"%s\":%s" (json_escape k)
      (match v with Count n -> string_of_int n | Ns n -> Int64.to_string n)
  in
  List.iter
    (fun e ->
      sep ();
      let ph = match e.kind with B -> "B" | E -> "E" | I -> "i" in
      Buffer.add_string b
        (Printf.sprintf "{\"ph\":\"%s\",\"name\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":1" ph
           (json_escape e.name) (us e.ts));
      (match e.args with
      | [] -> ()
      | args ->
        Buffer.add_string b ",\"args\":{";
        Buffer.add_string b (String.concat "," (List.map arg_json args));
        Buffer.add_char b '}');
      Buffer.add_char b '}')
    evs;
  let tend = match List.rev evs with [] -> 0.0 | e :: _ -> us e.ts in
  List.iter
    (fun (n, v) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"ph\":\"C\",\"name\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":1,\"args\":{\"value\":%d}}"
           (json_escape n) tend v))
    (counters t);
  Buffer.add_string b
    (Printf.sprintf "\n],\"otherData\":{\"dropped\":%d}}\n" t.dropped);
  Buffer.contents b
