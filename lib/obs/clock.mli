(** Monotonic time for the whole pipeline.

    Deadlines and tracer timestamps must never move with the wall clock:
    an NTP step or a laptop suspend would fire (or starve) every pending
    deadline and corrupt span durations. [now] reads CLOCK_MONOTONIC via
    the bechamel stub — nanoseconds from an arbitrary origin, strictly
    unaffected by clock adjustments.

    The source is swappable so tests can drive time by hand: a deadline
    regression test advances a fake counter instead of sleeping. *)

(** Current monotonic time in nanoseconds. Safe to call from any
    domain. *)
val now : unit -> int64

(** [elapsed_ns since] is [now () - since]. *)
val elapsed_ns : int64 -> int64

(** Seconds to nanoseconds, for deadline arithmetic. *)
val ns_of_s : float -> int64

(** Nanoseconds to seconds, for reporting. *)
val s_of_ns : int64 -> float

(** [set_source f] replaces the clock source (tests only). *)
val set_source : (unit -> int64) -> unit

(** Restore the real monotonic source. *)
val use_real : unit -> unit

(** [with_source f body] runs [body] under source [f], restoring the
    real clock afterwards even on exceptions. *)
val with_source : (unit -> int64) -> (unit -> 'a) -> 'a
