let real : unit -> int64 = Monotonic_clock.now

(* the source is read from worker domains (deadline polls ride the
   interpreter's cancel hook), so the swap point is an atomic *)
let source = Atomic.make real

let now () = (Atomic.get source) ()
let elapsed_ns since = Int64.sub (now ()) since
let ns_of_s s = Int64.of_float (s *. 1e9)
let s_of_ns ns = Int64.to_float ns /. 1e9
let set_source f = Atomic.set source f
let use_real () = Atomic.set source real

let with_source f body =
  set_source f;
  Fun.protect ~finally:use_real body
