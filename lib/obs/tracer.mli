(** Deterministic session tracing: spans, instants and counters in a
    preallocated ring.

    The tracer observes a live session — record, search, stitch — at a
    cost low enough to leave on in benchmarks, and deterministically
    enough that a trace is itself replay evidence: with timestamps
    masked, two runs of the same seed render byte-identical traces.

    Ownership rules that make that true:

    - Spans and instants are emitted only from the session's reducer
      thread (the thread driving record or search). The ring is
      single-writer; worker domains never touch it.
    - Worker domains report through {e counters} only: atomic cells
      whose adds commute, so totals are order-independent. Under
      speculative parallel search ([--jobs] > 1) worker counters also
      count cancelled speculative attempts, so the byte-identical
      contract is stated for sequential sessions.
    - Wall-time quantities (span timestamps, [_ns]-suffixed counters)
      are the only nondeterministic values, and {!render_masked} elides
      exactly those.

    The disabled path is one ref read: every ambient hook
    ([span_] / [instant_] / [count] / [handle]) is a no-op when no
    tracer is installed. *)

(** An argument value on an event. [Ns] marks wall-time, masked by
    {!render_masked}; [Count] is deterministic and rendered as-is. *)
type value = Count of int | Ns of int64

type kind = B  (** span begin *) | E  (** span end *) | I  (** instant *)

(** One ring slot, exposed for tests. *)
type ev = {
  mutable kind : kind;
  mutable name : string;
  mutable ts : int64;  (** monotonic ns, {!Clock.now} *)
  mutable args : (string * value) list;
}

type t

(** [create ?capacity ()] preallocates a ring of [capacity] (default
    65536) event slots. On overflow the oldest event is overwritten and
    {!dropped} counts the loss — recent history wins, and the drop
    count keeps the profile honest. *)
val create : ?capacity:int -> unit -> t

(** {1 Ambient installation} *)

(** [set_current (Some t)] installs [t] as the ambient tracer the
    instrumentation hooks write to; [set_current None] disables them. *)
val set_current : t option -> unit

val current : unit -> t option

(** [with_current t f] runs [f] with [t] installed, restoring the
    previous ambient tracer afterwards. *)
val with_current : t -> (unit -> 'a) -> 'a

(** {1 Events (reducer thread only)} *)

val span : t -> ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
val instant : t -> ?args:(string * value) list -> string -> unit

(** Ambient variants: no-ops when disabled. *)
val span_ : ?args:(string * value) list -> string -> (unit -> 'a) -> 'a

val instant_ : ?args:(string * value) list -> string -> unit

(** {1 Counters (any domain)} *)

type counter

(** [counter t name] finds or creates the named counter. Counters whose
    name ends in [_ns] hold wall-time and are masked by
    {!render_masked}. *)
val counter : t -> string -> counter

(** [handle name] resolves a counter against the ambient tracer once,
    for hot paths: [None] when tracing is disabled. Create handles at
    setup time (reducer thread), bump them from anywhere. *)
val handle : string -> counter option

(** [bump h n] adds [n]; free when [h] is [None]. *)
val bump : counter option -> int -> unit

(** [count name n] is [bump (handle name) n] — for cool paths. *)
val count : string -> int -> unit

(** {1 Inspection} *)

val length : t -> int
val dropped : t -> int

(** Events currently in the ring, oldest first. *)
val events : t -> ev list

(** Counter totals, sorted by name. *)
val counters : t -> (string * int) list

(** Aggregated span statistics (by name, sorted), from well-nested B/E
    pairs in the ring. *)
type span_stat = { sname : string; calls : int; total_ns : int64 }

val profile : t -> span_stat list

(** {1 Exports} *)

(** Canonical deterministic rendering: one line per event and counter,
    timestamps elided, [Ns] args and [_ns] counters masked to [*].
    Two same-seed sequential sessions render byte-identically — the
    qcheck law in [test_obs]. *)
val render_masked : t -> string

(** Chrome trace-event JSON ([{"traceEvents":[...]}]): open in
    [about:tracing] or Perfetto. Timestamps are microseconds relative
    to the first event; counters appear as ["C"] samples at the end. *)
val to_chrome_json : t -> string
